"""The standard experimental setting of Section VII, assembled once.

Benchmarks and examples share the two datasets (synthetic DBLP and
Wikipedia/INEX substitutes), their indexes, the six query workloads, and
the suggester factories through this module.  Everything is memoized per
process and per scale, so the bench suite builds each corpus exactly
once.

Scales:

* ``small`` — seconds to build; used by integration tests.
* ``default`` — the benchmark scale; large enough that every shape the
  paper reports (speedups, workload orderings) is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.baselines.dictionary import (
    LogBasedCorrector,
)
from repro.baselines.py08 import PY08Config, PY08Suggester
from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.naive import NaiveCleaner
from repro.core.slca_cleaner import SLCACleanSuggester
from repro.datasets.misspellings import COMMON_MISSPELLINGS
from repro.datasets.queries import QueryRecord, build_query_workloads
from repro.datasets.synthetic_dblp import DBLPConfig, generate_dblp
from repro.datasets.synthetic_wiki import WikiConfig, generate_wiki
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import CorpusIndex, build_corpus_index
from repro.xmltree.document import XMLDocument

#: ε for the CLEAN and RAND workloads (RAND injects single edits).
EVAL_MAX_ERRORS = 2

#: ε for the RULE workloads: common human misspellings are often
#: further from their correction, so "we need to explore a larger space
#: of variants … than the RAND ones" (Section VII-A).  This is also
#: what makes RULE queries the slowest rows of Table VI.
RULE_MAX_ERRORS = 3


def eps_for(kind: str) -> int:
    """Variant-generation radius for a workload kind."""
    return RULE_MAX_ERRORS if kind == "RULE" else EVAL_MAX_ERRORS

_SCALES = {
    "small": {
        "dblp": DBLPConfig(publications=250, extra_vocabulary=80),
        "wiki": WikiConfig(articles=40, extra_vocabulary=400),
        "queries": 12,
    },
    "default": {
        "dblp": DBLPConfig(publications=12000, extra_vocabulary=350),
        "wiki": WikiConfig(articles=1000, extra_vocabulary=4000),
        "queries": 40,
    },
}

#: Query length ranges per dataset.  The paper's DBLP queries are an
#: author last name plus contribution keywords (2-4 words); the INEX
#: topics range from 1 to 7 words with average 2.5 — we sample 2-4 so
#: the multi-keyword machinery is exercised on every query while the
#: average stays near the paper's.
_QUERY_WORDS = {
    "DBLP": (2, 3),
    "INEX": (2, 4),
}


@dataclass
class DatasetSetting:
    """One dataset's complete experimental context."""

    label: str
    document: XMLDocument
    corpus: CorpusIndex
    workloads: dict[str, list[QueryRecord]]
    generator: VariantGenerator

    # ------------------------------------------------------------------
    # Suggester factories (sharing the expensive variant generator)
    # ------------------------------------------------------------------

    def xclean(
        self,
        gamma: int | None = 1000,
        beta: float = 5.0,
        min_depth: int = 2,
        use_skipping: bool = True,
        max_errors: int = EVAL_MAX_ERRORS,
        engine: str = "packed",
        **overrides,
    ) -> XCleanSuggester:
        return XCleanSuggester(
            self.corpus,
            generator=self.generator.fresh_cache(),
            config=XCleanConfig(
                max_errors=max_errors,
                beta=beta,
                gamma=gamma,
                min_depth=min_depth,
                use_skipping=use_skipping,
                engine=engine,
                **overrides,
            ),
        )

    def xclean_slca(
        self,
        gamma: int | None = 1000,
        beta: float = 5.0,
        max_errors: int = EVAL_MAX_ERRORS,
    ) -> SLCACleanSuggester:
        return SLCACleanSuggester(
            self.corpus,
            generator=self.generator.fresh_cache(),
            config=XCleanConfig(
                max_errors=max_errors, beta=beta, gamma=gamma
            ),
        )

    def naive(
        self, beta: float = 5.0, max_errors: int = EVAL_MAX_ERRORS
    ) -> NaiveCleaner:
        return NaiveCleaner(
            self.corpus,
            generator=self.generator.fresh_cache(),
            config=XCleanConfig(
                max_errors=max_errors, beta=beta, gamma=None
            ),
        )

    def py08(
        self, gamma: int = 100, max_errors: int = EVAL_MAX_ERRORS
    ) -> PY08Suggester:
        return PY08Suggester(
            self.corpus,
            generator=self.generator.fresh_cache(),
            config=PY08Config(max_errors=max_errors, gamma=gamma),
        )

    def se1(self, max_errors: int = EVAL_MAX_ERRORS) -> LogBasedCorrector:
        return LogBasedCorrector(
            self.corpus,
            misspelling_map=self.query_log_map(),
            generator=self.generator.fresh_cache(),
            max_errors=max_errors,
        )

    def se2(self, max_errors: int = EVAL_MAX_ERRORS) -> LogBasedCorrector:
        return LogBasedCorrector(
            self.corpus,
            misspelling_map=self.query_log_map(coverage=0.65),
            generator=self.generator.fresh_cache(),
            max_errors=max_errors,
        )

    def query_log_map(self, coverage: float = 0.75) -> dict[str, str]:
        """A search engine's simulated query-log knowledge.

        A real engine's logs contain the misspellings humans commonly
        type — i.e. most of what the RULE perturbation produces — plus
        the public common-misspellings list.  We give each engine the
        list and a deterministic ``coverage`` share of the RULE
        workload's per-word corrections (logs are broad but not
        omniscient; SE1's is broader than SE2's), reproducing the
        paper's observation that the SEs handle RULE noticeably better
        than RAND.
        """
        log: dict[str, str] = dict(COMMON_MISSPELLINGS)
        for record in self.workloads.get("RULE", ()):
            for dirty_word, clean_word in zip(
                record.dirty, record.golden[0]
            ):
                if dirty_word == clean_word:
                    continue
                # Stable pseudo-random subset selection.
                if (sum(map(ord, dirty_word)) % 100) >= coverage * 100:
                    continue
                log.setdefault(dirty_word, clean_word)
        return log


def _build_setting(
    label: str,
    document: XMLDocument,
    query_count: int,
    seed: int,
    query_style: str = "generic",
) -> DatasetSetting:
    corpus = build_corpus_index(document)
    min_words, max_words = _QUERY_WORDS.get(label, (2, 3))
    workloads = build_query_workloads(
        corpus,
        document,
        count=query_count,
        seed=seed,
        style=query_style,
        min_words=min_words,
        max_words=max_words,
    )
    generator = VariantGenerator(
        corpus.vocabulary.tokens(),
        max_errors=RULE_MAX_ERRORS,
        partition_threshold=6,
    )
    return DatasetSetting(
        label=label,
        document=document,
        corpus=corpus,
        workloads=workloads,
        generator=generator,
    )


@lru_cache(maxsize=4)
def dblp_setting(scale: str = "default") -> DatasetSetting:
    """The DBLP-substitute dataset at the requested scale."""
    params = _SCALES[scale]
    corpus = generate_dblp(params["dblp"])
    return _build_setting(
        "DBLP",
        corpus.document,
        params["queries"],
        seed=101,
        query_style="dblp",
    )


@lru_cache(maxsize=4)
def wiki_setting(scale: str = "default") -> DatasetSetting:
    """The INEX-substitute dataset at the requested scale."""
    params = _SCALES[scale]
    corpus = generate_wiki(params["wiki"])
    return _build_setting(
        "INEX", corpus.document, params["queries"], seed=202
    )


def all_settings(scale: str = "default") -> list[DatasetSetting]:
    """Both datasets, DBLP first (the paper's presentation order)."""
    return [dblp_setting(scale), wiki_setting(scale)]


def workload_label(setting: DatasetSetting, kind: str) -> str:
    """Names like "DBLP-RAND" used across the paper's tables."""
    return f"{setting.label}-{kind}"
