"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints every regenerated artifact with these
helpers so the output can be compared side by side with the paper
(EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with 3 decimals; everything else via str().
    """
    rendered_rows = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_curve(
    xs: Sequence[int],
    series: dict[str, Sequence[float]],
    title: str = "",
    width: int = 40,
) -> str:
    """Render precision@N curves as rows of values plus a sparkline.

    A numeric table is more comparable than ASCII art, but the bar
    gives the "flat vs climbing" shape of Figure 4 at a glance.
    """
    lines = []
    if title:
        lines.append(title)
    header = "system".ljust(12) + "".join(
        f"@{x}".rjust(8) for x in xs
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in series.items():
        row = name.ljust(12) + "".join(
            f"{v:8.3f}" for v in values
        )
        bar = _sparkline(values, width=min(width, 4 * len(values)))
        lines.append(f"{row}   {bar}")
    return "\n".join(lines)


_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float], width: int = 40) -> str:
    if not values:
        return ""
    chars = []
    for value in values:
        clipped = min(max(value, 0.0), 1.0)
        chars.append(_SPARK_CHARS[round(clipped * (len(_SPARK_CHARS) - 1))])
    return "".join(chars)


def shape_check(description: str, holds: bool) -> str:
    """One line of the benchmark's shape verdict output."""
    marker = "OK " if holds else "MISS"
    return f"  [{marker}] {description}"
