"""Experiment runner: drive a suggester over a workload, collect metrics.

One :func:`evaluate_suggester` call produces everything a paper table
cell needs: MRR, precision@N for the requested cut-offs, and mean query
time — plus the per-query outcomes for error analysis (Table III).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.suggestion import Suggester, Suggestion
from repro.datasets.queries import QueryRecord
from repro.eval.metrics import (
    mean_reciprocal_rank,
    precision_at,
    reciprocal_rank,
)
from repro.exceptions import QueryError

DEFAULT_PRECISION_LEVELS = (1, 2, 3, 5, 10)


@dataclass
class QueryOutcome:
    """One query's evaluation record."""

    record: QueryRecord
    suggestions: list[Suggestion]
    elapsed: float
    rr: float

    @property
    def hit_rank(self) -> int | None:
        """Rank of the golden answer, or None when missed."""
        if self.rr == 0.0:
            return None
        return round(1.0 / self.rr)


@dataclass
class EvalResult:
    """Aggregated metrics of one (suggester, workload) pair."""

    system: str
    workload: str
    mrr: float
    precision: dict[int, float]
    mean_time: float
    total_time: float
    outcomes: list[QueryOutcome] = field(repr=False, default_factory=list)
    #: Serving-layer metrics snapshot (``MetricsSnapshot.as_dict()``)
    #: when the evaluated system exposes one; see `evaluate_service`.
    metrics: dict | None = field(repr=False, default=None)

    def precision_row(self) -> list[float]:
        """Precision values in cut-off order (Figure 4 series)."""
        return [self.precision[n] for n in sorted(self.precision)]

    def time_percentile(self, percentile: float) -> float:
        """Latency percentile over the per-query times (seconds).

        Nearest-rank method; ``percentile`` in [0, 100].  Returns 0.0
        for an empty result.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.outcomes:
            return 0.0
        ordered = sorted(o.elapsed for o in self.outcomes)
        if percentile == 0.0:
            return ordered[0]
        rank = math.ceil(percentile / 100.0 * len(ordered))
        return ordered[rank - 1]


def evaluate_suggester(
    suggester: Suggester,
    records: Sequence[QueryRecord],
    k: int = 10,
    precision_levels: Sequence[int] = DEFAULT_PRECISION_LEVELS,
    system: str = "",
    workload: str = "",
) -> EvalResult:
    """Run every query, time it, and aggregate MRR/precision@N.

    Queries that raise :class:`QueryError` (e.g. every keyword filtered
    out) count as an empty suggestion list — real systems answer those
    with "no suggestion", not a crash.
    """
    outcomes: list[QueryOutcome] = []
    total_time = 0.0
    for record in records:
        started = time.perf_counter()
        try:
            suggestions = suggester.suggest(record.dirty_text, k)
        except QueryError:
            suggestions = []
        elapsed = time.perf_counter() - started
        total_time += elapsed
        outcomes.append(
            QueryOutcome(
                record=record,
                suggestions=list(suggestions),
                elapsed=elapsed,
                rr=reciprocal_rank(suggestions, record),
            )
        )
    all_suggestions = [o.suggestions for o in outcomes]
    precision = {
        n: precision_at(all_suggestions, list(records), n)
        for n in precision_levels
    }
    return EvalResult(
        system=system or type(suggester).__name__,
        workload=workload,
        mrr=mean_reciprocal_rank([o.rr for o in outcomes]),
        precision=precision,
        mean_time=total_time / len(records) if records else 0.0,
        total_time=total_time,
        outcomes=outcomes,
    )


def evaluate_snapshot(
    index_path: str,
    records: Sequence[QueryRecord],
    k: int = 10,
    precision_levels: Sequence[int] = DEFAULT_PRECISION_LEVELS,
    system: str = "",
    workload: str = "",
    config=None,
) -> EvalResult:
    """Cold-start evaluation: load an on-disk index, run the workload.

    ``index_path`` may be any persisted format — a v3 snapshot mmaps
    in near-constant time, v1/v2 deserialize.  A fresh
    :class:`~repro.core.cleaner.XCleanSuggester` is built over the
    loaded corpus (snapshot-backed corpora serve variants straight
    from their embedded FastSS sections), so the numbers include what
    a worker pays between process start and its first answer.  The
    load time is attached to the result as
    ``metrics["index_load_seconds"]``.
    """
    from repro.core.cleaner import XCleanSuggester
    from repro.index.snapshot import snapshot_or_corpus

    started = time.perf_counter()
    corpus = snapshot_or_corpus(index_path)
    load_seconds = time.perf_counter() - started
    suggester = XCleanSuggester(corpus, config=config)
    result = evaluate_suggester(
        suggester,
        records,
        k=k,
        precision_levels=precision_levels,
        system=system or "XClean@snapshot",
        workload=workload,
    )
    result.metrics = {"index_load_seconds": load_seconds}
    return result


def evaluate_service(
    service,
    records: Sequence[QueryRecord],
    k: int = 10,
    precision_levels: Sequence[int] = DEFAULT_PRECISION_LEVELS,
    system: str = "",
    workload: str = "",
    workers: int | None = None,
) -> EvalResult:
    """Evaluate a batch serving layer (``suggest_batch``) end to end.

    The whole workload goes through one ``suggest_batch`` call, which
    is how the serving path is meant to be exercised (result cache,
    deduplication, optional process-pool fan-out).  Per-query latency
    is not observable through a batch, so each outcome carries the
    amortized time ``total/len`` — use :func:`evaluate_suggester` when
    individual latencies matter.  When the service exposes a
    ``metrics()`` snapshot (``SuggestionService`` does), its dict form
    is attached to the result for stage-level analysis.
    """
    started = time.perf_counter()
    batches = service.suggest_batch(
        [record.dirty_text for record in records], k, workers=workers
    )
    total_time = time.perf_counter() - started
    metrics_snapshot = None
    metrics_hook = getattr(service, "metrics", None)
    if callable(metrics_hook):
        metrics_snapshot = metrics_hook().as_dict()
    amortized = total_time / len(records) if records else 0.0
    outcomes = [
        QueryOutcome(
            record=record,
            suggestions=list(suggestions),
            elapsed=amortized,
            rr=reciprocal_rank(suggestions, record),
        )
        for record, suggestions in zip(records, batches)
    ]
    precision = {
        n: precision_at(
            [o.suggestions for o in outcomes], list(records), n
        )
        for n in precision_levels
    }
    return EvalResult(
        system=system or type(service).__name__,
        workload=workload,
        mrr=mean_reciprocal_rank([o.rr for o in outcomes]),
        precision=precision,
        mean_time=amortized,
        total_time=total_time,
        outcomes=outcomes,
        metrics=metrics_snapshot,
    )
