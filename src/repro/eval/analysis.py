"""Statistical analysis of evaluation results.

The paper reports point estimates; with 40–285 queries per workload the
differences it draws conclusions from deserve uncertainty estimates.
This module provides the standard IR-evaluation tooling:

* :func:`bootstrap_mrr_ci` — seeded bootstrap confidence interval for a
  workload's MRR;
* :func:`paired_comparison` — per-query win/tie/loss between two
  systems on the same workload, with a two-sided sign-test p-value;
* :func:`categorize_failures` — why a query was missed: the suggester
  stayed silent, ranked the truth too low, or never produced it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.eval.runner import EvalResult


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.point:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}]@{self.confidence:.0%}"
        )


def bootstrap_mrr_ci(
    result: EvalResult,
    confidence: float = 0.95,
    iterations: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the MRR of one evaluation.

    Resamples the per-query reciprocal ranks with replacement; fully
    deterministic under ``seed``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    ranks = [outcome.rr for outcome in result.outcomes]
    if not ranks:
        return ConfidenceInterval(0.0, 0.0, 0.0, confidence)
    rng = random.Random(seed)
    n = len(ranks)
    means = sorted(
        sum(rng.choice(ranks) for _ in range(n)) / n
        for _ in range(iterations)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, math.floor(alpha * iterations))
    high_index = min(
        iterations - 1, math.ceil((1.0 - alpha) * iterations) - 1
    )
    return ConfidenceInterval(
        point=result.mrr,
        low=means[low_index],
        high=means[high_index],
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Per-query head-to-head between two systems."""

    wins: int
    ties: int
    losses: int
    p_value: float

    @property
    def decided(self) -> int:
        return self.wins + self.losses

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"W{self.wins}/T{self.ties}/L{self.losses} "
            f"(sign test p={self.p_value:.3g})"
        )


def paired_comparison(
    first: EvalResult, second: EvalResult
) -> PairedComparison:
    """Win/tie/loss of ``first`` vs ``second`` with a sign test.

    Both results must come from the same workload in the same order
    (checked via the dirty queries).  The two-sided sign test treats
    each decided query as a fair coin under the null hypothesis.
    """
    if len(first.outcomes) != len(second.outcomes):
        raise ValueError("results cover different workloads")
    wins = ties = losses = 0
    for a, b in zip(first.outcomes, second.outcomes):
        if a.record.dirty != b.record.dirty:
            raise ValueError("results are not aligned per query")
        if a.rr > b.rr:
            wins += 1
        elif a.rr < b.rr:
            losses += 1
        else:
            ties += 1
    return PairedComparison(
        wins=wins,
        ties=ties,
        losses=losses,
        p_value=sign_test_p_value(wins, losses),
    )


def sign_test_p_value(wins: int, losses: int) -> float:
    """Two-sided exact sign test over the decided queries.

    P(X <= min(w,l) or X >= max(w,l)) for X ~ Binomial(w+l, 0.5);
    returns 1.0 when nothing was decided.
    """
    decided = wins + losses
    if decided == 0:
        return 1.0
    extreme = min(wins, losses)
    tail = sum(
        math.comb(decided, i) for i in range(0, extreme + 1)
    ) / (2.0**decided)
    return min(1.0, 2.0 * tail)


@dataclass(frozen=True)
class FailureBreakdown:
    """Where a system's misses come from (Table III-style analysis)."""

    total: int
    correct_at_1: int
    ranked_low: int
    absent: int
    silent: int

    def as_rows(self) -> list[tuple[str, int]]:
        return [
            ("correct at rank 1", self.correct_at_1),
            ("truth ranked below 1", self.ranked_low),
            ("truth absent from top-k", self.absent),
            ("no suggestions at all", self.silent),
        ]


def categorize_failures(result: EvalResult) -> FailureBreakdown:
    """Classify every query outcome of an evaluation."""
    correct = low = absent = silent = 0
    for outcome in result.outcomes:
        if outcome.rr == 1.0 and outcome.suggestions:
            correct += 1
        elif not outcome.suggestions:
            if outcome.rr == 1.0:
                correct += 1  # silent-and-clean counts as correct
            else:
                silent += 1
        elif outcome.rr > 0.0:
            low += 1
        else:
            absent += 1
    return FailureBreakdown(
        total=len(result.outcomes),
        correct_at_1=correct,
        ranked_low=low,
        absent=absent,
        silent=silent,
    )


def mrr_difference_ci(
    first: EvalResult,
    second: EvalResult,
    confidence: float = 0.95,
    iterations: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for MRR(first) − MRR(second), paired per query."""
    if len(first.outcomes) != len(second.outcomes):
        raise ValueError("results cover different workloads")
    deltas = [
        a.rr - b.rr
        for a, b in zip(first.outcomes, second.outcomes)
    ]
    if not deltas:
        return ConfidenceInterval(0.0, 0.0, 0.0, confidence)
    rng = random.Random(seed)
    n = len(deltas)
    means = sorted(
        sum(rng.choice(deltas) for _ in range(n)) / n
        for _ in range(iterations)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, math.floor(alpha * iterations))
    high_index = min(
        iterations - 1, math.ceil((1.0 - alpha) * iterations) - 1
    )
    return ConfidenceInterval(
        point=first.mrr - second.mrr,
        low=means[low_index],
        high=means[high_index],
        confidence=confidence,
    )
