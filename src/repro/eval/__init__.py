"""Evaluation harness: metrics, runner, reporting, standard settings."""

from repro.eval.analysis import (
    ConfidenceInterval,
    FailureBreakdown,
    PairedComparison,
    bootstrap_mrr_ci,
    categorize_failures,
    mrr_difference_ci,
    paired_comparison,
    sign_test_p_value,
)
from repro.eval.experiments import (
    EVAL_MAX_ERRORS,
    DatasetSetting,
    all_settings,
    dblp_setting,
    wiki_setting,
    workload_label,
)
from repro.eval.metrics import (
    hit_at,
    mean_reciprocal_rank,
    precision_at,
    reciprocal_rank,
)
from repro.eval.reporting import (
    format_curve,
    format_table,
    shape_check,
)
from repro.eval.runner import (
    DEFAULT_PRECISION_LEVELS,
    EvalResult,
    QueryOutcome,
    evaluate_suggester,
)

__all__ = [
    "ConfidenceInterval",
    "DEFAULT_PRECISION_LEVELS",
    "FailureBreakdown",
    "PairedComparison",
    "bootstrap_mrr_ci",
    "categorize_failures",
    "mrr_difference_ci",
    "paired_comparison",
    "sign_test_p_value",
    "DatasetSetting",
    "EVAL_MAX_ERRORS",
    "EvalResult",
    "QueryOutcome",
    "all_settings",
    "dblp_setting",
    "evaluate_suggester",
    "format_curve",
    "format_table",
    "hit_at",
    "mean_reciprocal_rank",
    "precision_at",
    "reciprocal_rank",
    "shape_check",
    "wiki_setting",
    "workload_label",
]
