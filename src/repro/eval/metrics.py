"""Evaluation metrics: MRR and precision@N (Section VII-B).

Conventions, matching how the paper treats the search engines:

* A suggester may return *no* suggestions, asserting the query is fine
  as typed.  That verdict is correct exactly when the dirty query
  itself is in the golden set (the CLEAN workloads) — it then counts as
  a rank-1 answer; otherwise it scores 0.
* The golden set may contain several acceptable answers (the paper
  unions two assessors' choices); the best-ranked hit counts.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.suggestion import Suggestion
from repro.datasets.queries import QueryRecord


def reciprocal_rank(
    suggestions: Sequence[Suggestion], record: QueryRecord
) -> float:
    """1/rank of the first golden answer (0 when absent).

    An empty suggestion list is the suggester saying "the query is
    clean"; it scores 1 iff the dirty query is itself golden.
    """
    golden = set(record.golden)
    if not suggestions:
        return 1.0 if record.dirty in golden else 0.0
    for rank, suggestion in enumerate(suggestions, start=1):
        if suggestion.tokens in golden:
            return 1.0 / rank
    return 0.0


def mean_reciprocal_rank(values: Sequence[float]) -> float:
    """Mean of per-query reciprocal ranks; 0 for an empty input."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def hit_at(
    suggestions: Sequence[Suggestion], record: QueryRecord, n: int
) -> bool:
    """Whether a golden answer appears in the top n suggestions."""
    golden = set(record.golden)
    if not suggestions:
        return record.dirty in golden
    return any(s.tokens in golden for s in suggestions[:n])


def precision_at(
    all_suggestions: Sequence[Sequence[Suggestion]],
    records: Sequence[QueryRecord],
    n: int,
) -> float:
    """Fraction of queries whose top-n suggestions contain the truth."""
    if not records:
        return 0.0
    hits = sum(
        hit_at(suggestions, record, n)
        for suggestions, record in zip(all_suggestions, records)
    )
    return hits / len(records)
