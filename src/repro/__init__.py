"""XClean: valid spelling suggestions for XML keyword queries.

A full reproduction of *"XClean: Providing Valid Spelling Suggestions
for XML Keyword Queries"* (Lu, Wang, Li, Liu — ICDE 2011), including
every substrate the paper depends on: the XML tree model with Dewey
codes, a Dewey-coded inverted index with MergedList skipping, FastSS
variant generation, the probabilistic scoring framework, Algorithm 1,
the SLCA-semantics variant, the PY08 baseline, and the complete
evaluation harness.

Quickstart::

    from repro import XCleanSuggester, XMLDocument, build_corpus_index

    doc = XMLDocument.from_string("<dblp>...</dblp>")
    corpus = build_corpus_index(doc)
    suggester = XCleanSuggester(corpus)
    for s in suggester.suggest("tree icdt", k=3):
        print(s.text, s.score)
"""

from repro.baselines import (
    DictionaryCorrector,
    LogBasedCorrector,
    PY08Config,
    PY08Suggester,
)
from repro.core import (
    DirichletLanguageModel,
    ELCACleanSuggester,
    EntitySearch,
    ExponentialErrorModel,
    MaysErrorModel,
    NaiveCleaner,
    ResultTypeFinder,
    SearchResult,
    SLCACleanSuggester,
    SpaceAwareSuggester,
    Suggester,
    Suggestion,
    XCleanConfig,
    XCleanSuggester,
)
from repro.exceptions import (
    ConfigurationError,
    QueryError,
    ReproError,
    StorageError,
    XMLParseError,
)
from repro.fastss import (
    CompositeVariantGenerator,
    PhoneticIndex,
    VariantGenerator,
    edit_distance,
    soundex,
)
from repro.index import (
    CorpusIndex,
    Tokenizer,
    build_corpus_index,
    load_index,
    save_index,
)
from repro.xmltree import XMLDocument, XMLNode, build_tree, parse_document

__version__ = "1.0.0"

__all__ = [
    "CompositeVariantGenerator",
    "ConfigurationError",
    "CorpusIndex",
    "DictionaryCorrector",
    "DirichletLanguageModel",
    "ELCACleanSuggester",
    "EntitySearch",
    "ExponentialErrorModel",
    "LogBasedCorrector",
    "MaysErrorModel",
    "NaiveCleaner",
    "PY08Config",
    "PY08Suggester",
    "PhoneticIndex",
    "QueryError",
    "ReproError",
    "ResultTypeFinder",
    "SearchResult",
    "SLCACleanSuggester",
    "SpaceAwareSuggester",
    "StorageError",
    "Suggester",
    "Suggestion",
    "Tokenizer",
    "VariantGenerator",
    "XCleanConfig",
    "XCleanSuggester",
    "XMLDocument",
    "XMLNode",
    "XMLParseError",
    "__version__",
    "build_corpus_index",
    "build_tree",
    "edit_distance",
    "soundex",
    "parse_document",
    "save_index",
    "load_index",
]
