"""The asyncio HTTP front-end over :class:`SuggestionService`.

One event loop accepts connections and parses requests; the actual
query computation runs on a bounded :class:`ThreadPoolExecutor` via
:meth:`SuggestionService.suggest_detailed` (whose serving core is
thread-safe — bookkeeping under a lock, in-process computation
serialized).  Backpressure is the *service's* machinery, reused:

* admission control — the handler calls ``service.admit(1)`` on the
  event loop **before** dispatching to the executor, so an overloaded
  service sheds at arrival (HTTP 503 + ``Retry-After`` from the
  service's backpressure hint) instead of queueing executor work;
* deadlines — ``XCleanConfig.deadline_seconds`` truncated answers are
  served with ``"partial": true`` in the response body;
* the circuit breaker / pool path raises the same typed
  :class:`~repro.exceptions.Overloaded`, mapped identically.

Concurrent identical ``(normalized tokens, k)`` requests are coalesced
through a :class:`~repro.net.singleflight.SingleFlight`: one backend
execution, byte-identical response bytes fanned out to every waiter,
counted in ``coalesced_queries_total``.

Graceful drain: SIGTERM (and SIGINT) stops accepting connections,
cancels idle keep-alive connections, lets in-flight requests finish
(bounded by ``drain_grace``), then returns from :meth:`HTTPFrontEnd.
run`.  ``GET /healthz`` reports ``draining`` so load balancers stop
routing before the listener disappears.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from time import perf_counter

from repro.core.server import SuggestionService
from repro.exceptions import Overloaded, QueryError
from repro.net.http import (
    REQUEST_ID_HEADER,
    BadRequest,
    HTTPRequest,
    build_response,
    error_body,
    json_body,
    parse_request_head,
    retry_after_header,
    valid_request_id,
)
from repro.net.singleflight import SingleFlight
from repro.obs.logging import NULL_REQUEST_LOG, new_request_id
from repro.obs.ops import export_process_gauges, status_payload
from repro.obs.slo import SLOTracker

logger = logging.getLogger(__name__)

#: Upper bound on ``k`` accepted over the wire; a typo like
#: ``k=100000`` must not turn one request into a giant answer.
MAX_K = 100

#: Outcomes the SLO tracker accepts (``repro/obs/slo.py``); 4xx client
#: errors are logged but burn no error budget.
_SLO_OUTCOMES = frozenset(("served", "partial", "shed", "error"))


def _default_outcome(status: int) -> str:
    """SLO outcome from an HTTP status when the answer set none."""
    if status == 503:
        return "shed"
    if status >= 500:
        return "error"
    if status >= 400:
        return "client_error"
    return "served"


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the HTTP front-end."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests, benchmarks).
    port: int = 8080
    #: Executor threads running service calls.  In-process computation
    #: is GIL-bound and serialized by the service anyway; threads buy
    #: overlap of parsing/serialization with computation, not parallel
    #: scoring — keep this small.
    threads: int = 4
    #: Default ``k`` when a request does not pass one.
    default_k: int = 10
    #: Reject request bodies larger than this (HTTP 413).
    max_body_bytes: int = 64 * 1024
    #: Reject request heads (line + headers) larger than this (431).
    max_head_bytes: int = 16 * 1024
    #: Seconds an idle keep-alive connection is retained.
    keep_alive_timeout: float = 30.0
    #: Seconds a drain waits for in-flight requests before cancelling.
    drain_grace: float = 10.0
    #: Coalesce concurrent identical suggest requests.
    single_flight: bool = True


@dataclass
class FrontEndStats:
    """Front-end lifetime counters (service counters live elsewhere)."""

    connections_total: int = 0
    requests_total: int = 0
    responses_5xx_other: int = 0
    shed_total: int = 0
    coalesced_total: int = 0
    singleflight_leaders_total: int = 0


class _Connection:
    """Book-keeping for one client connection."""

    __slots__ = ("task", "writer", "busy")

    def __init__(self, task: asyncio.Task, writer: asyncio.StreamWriter):
        self.task = task
        self.writer = writer
        self.busy = False


class _Answer:
    """One computed response: status + body + optional retry hint.

    Built exactly once per single-flight leader; followers reuse the
    same instance, so ``body`` bytes are shared, not re-encoded.
    ``outcome`` is the SLO verdict when the default status mapping is
    not enough (a 200 that is a deadline-truncated ``partial``).
    """

    __slots__ = ("status", "body", "retry_after", "outcome")

    def __init__(self, status: int, body: bytes,
                 retry_after: float | None = None,
                 outcome: str | None = None):
        self.status = status
        self.body = body
        self.retry_after = retry_after
        self.outcome = outcome


class HTTPFrontEnd:
    """Asyncio HTTP/1.1 listener over one :class:`SuggestionService`."""

    def __init__(
        self,
        service: SuggestionService,
        config: ServeConfig | None = None,
        *,
        request_log=None,
        slo=None,
    ):
        self.service = service
        self.config = config or ServeConfig()
        self.metrics = service.metrics_registry
        self.stats = FrontEndStats()
        self.singleflight = SingleFlight()
        #: JSONL access log (``repro/obs/logging.py``); disabled
        #: (null-object) unless the caller wires one.
        self.request_log = request_log or NULL_REQUEST_LOG
        #: Multi-window SLO rings (``repro/obs/slo.py``); on by
        #: default — the record path is a few integer bumps.
        self.slo = SLOTracker() if slo is None else slo
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.threads,
            thread_name_prefix="xclean-http",
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[_Connection] = set()
        self._draining = False
        self._drain_requested: asyncio.Event | None = None
        self.host = self.config.host
        self.port = self.config.port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and install SIGTERM/SIGINT drain handlers."""
        self._drain_requested = asyncio.Event()
        limit = max(
            self.config.max_head_bytes, self.config.max_body_bytes
        ) + 1024
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=limit,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.initiate_drain)
            except (NotImplementedError, RuntimeError):
                # Non-main thread or non-Unix loop: drains are then
                # driven programmatically (tests do exactly that).
                break
        logger.info("listening on http://%s:%d", self.host, self.port)

    def initiate_drain(self) -> None:
        """Begin a graceful shutdown; safe to call more than once.

        Stops accepting connections, wakes :meth:`run`, and cancels
        connections that are idle between requests.  In-flight
        requests keep running — :meth:`drain` bounds how long.
        """
        if self._draining:
            return
        self._draining = True
        logger.info("drain initiated: refusing new connections")
        if self._server is not None:
            self._server.close()
        for connection in list(self._connections):
            if not connection.busy:
                connection.task.cancel()
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def drain(self) -> None:
        """Complete a drain: wait for in-flight requests, then stop.

        Waits up to ``drain_grace`` seconds for connection tasks to
        finish on their own, cancels stragglers, and shuts the
        executor down.  Idempotent; callable only after
        :meth:`initiate_drain` (call it otherwise and it drains an
        already-idle server immediately).
        """
        self.initiate_drain()
        tasks = {c.task for c in self._connections}
        if tasks:
            done, pending = await asyncio.wait(
                tasks, timeout=self.config.drain_grace
            )
            if pending:
                logger.warning(
                    "drain grace (%.1fs) expired with %d connections "
                    "still busy; cancelling",
                    self.config.drain_grace, len(pending),
                )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self._server is not None:
            await self._server.wait_closed()
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.request_log.close()
        logger.info("drain complete")

    async def run(self) -> None:
        """Serve until a drain is requested, then drain and return."""
        if self._server is None:
            await self.start()
        assert self._drain_requested is not None
        await self._drain_requested.wait()
        await self.drain()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        connection = _Connection(task, writer)
        self._connections.add(connection)
        self.stats.connections_total += 1
        try:
            await self._serve_connection(connection, reader, writer)
        except asyncio.CancelledError:
            # Drain cancelled this connection between requests; eat
            # the cancellation so the close below still runs.
            pass
        except ConnectionError:
            pass
        finally:
            self._connections.discard(connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self,
        connection: _Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        config = self.config
        while not self._draining:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"),
                    timeout=config.keep_alive_timeout,
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive expired
            except asyncio.IncompleteReadError as error:
                if error.partial:
                    # Half a request head then EOF: tell the client
                    # before closing (best effort).
                    writer.write(build_response(
                        400,
                        error_body("bad_request",
                                   "truncated request head"),
                        keep_alive=False,
                    ))
                    await writer.drain()
                return
            except asyncio.LimitOverrunError:
                writer.write(build_response(
                    431,
                    error_body("headers_too_large",
                               "request head exceeds limit"),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            connection.busy = True
            try:
                keep_alive = await self._serve_request(
                    reader, writer, head
                )
            finally:
                connection.busy = False
            if not keep_alive or self._draining:
                return

    async def _serve_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        head: bytes,
    ) -> bool:
        """Parse, route, respond.  Returns whether to keep the conn."""
        self.stats.requests_total += 1
        began = perf_counter()
        keep_alive = False
        # The correlation id is minted at arrival — before parsing can
        # fail — so even a 400's log line carries one; a well-formed
        # inbound X-Request-Id replaces it below.
        request_id = new_request_id()
        method = ""
        path = ""
        log_fields: dict = {}
        extra: tuple[tuple[str, str], ...] = ()
        try:
            request = parse_request_head(head)
            method, path = request.method, request.path
            inbound = request.headers.get(REQUEST_ID_HEADER)
            if valid_request_id(inbound):
                request_id = inbound
            if len(head) > self.config.max_head_bytes:
                raise BadRequest(
                    "request head exceeds limit", status=431
                )
            length = request.content_length(
                self.config.max_body_bytes
            )
            if length:
                request.body = await reader.readexactly(length)
            keep_alive = request.keep_alive
            answer = await self._route(request, request_id, log_fields)
        except BadRequest as error:
            answer = _Answer(
                error.status,
                error_body("bad_request", str(error)),
            )
            # Framing is unreliable after a parse error (an unread
            # body, a bogus request line): never reuse the connection.
            keep_alive = False
        except asyncio.IncompleteReadError:
            return False  # client vanished mid-body; nothing to say
        except Overloaded as error:
            answer = self._overloaded_answer(error)
        except asyncio.CancelledError:
            raise
        except Exception:
            logger.exception("unhandled error serving request")
            answer = _Answer(
                500, error_body("internal", "internal server error")
            )
            keep_alive = False
        if answer.status == 503:
            self.stats.shed_total += 1
            extra += (retry_after_header(answer.retry_after),)
        elif answer.status >= 500:
            self.stats.responses_5xx_other += 1
        extra += (("X-Request-Id", request_id),)
        if self._draining:
            keep_alive = False
        writer.write(build_response(
            answer.status,
            answer.body,
            keep_alive=keep_alive,
            extra_headers=extra,
        ))
        await writer.drain()
        elapsed = perf_counter() - began
        outcome = answer.outcome or _default_outcome(answer.status)
        if path == "/suggest" and outcome in _SLO_OUTCOMES:
            self.slo.record(outcome, elapsed)
        if self.request_log.enabled:
            self.request_log.log(dict(
                {
                    "id": request_id,
                    "method": method,
                    "path": path,
                    "status": answer.status,
                    "outcome": outcome,
                    "latency_s": round(elapsed, 6),
                },
                **log_fields,
            ))
        if self.metrics.enabled:
            self.metrics.inc(
                "http_requests_total", status=str(answer.status)
            )
            self.metrics.observe("http_request_seconds", elapsed)
        return keep_alive

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, request: HTTPRequest, request_id: str,
                     log_fields: dict) -> _Answer:
        path = request.path
        if path == "/suggest":
            if request.method not in ("GET", "POST"):
                raise BadRequest(
                    f"{request.method} not allowed on /suggest",
                    status=405,
                )
            return await self._suggest(request, request_id, log_fields)
        if path == "/healthz":
            if request.method != "GET":
                raise BadRequest("use GET /healthz", status=405)
            status = "draining" if self._draining else "ok"
            return _Answer(
                200 if status == "ok" else 503,
                json_body({"status": status}),
            )
        if path == "/readyz":
            if request.method != "GET":
                raise BadRequest("use GET /readyz", status=405)
            health = self.service.health(draining=self._draining)
            return _Answer(
                health.http_status,
                json_body({
                    "status": health.state,
                    "reasons": health.reasons,
                }),
            )
        if path == "/statusz":
            if request.method != "GET":
                raise BadRequest("use GET /statusz", status=405)
            return _Answer(200, json_body(status_payload(
                self.service,
                slo=self.slo,
                front_end=self.stats_payload(),
                draining=self._draining,
            )))
        if path == "/metrics":
            if request.method != "GET":
                raise BadRequest("use GET /metrics", status=405)
            return self._metrics_answer(request)
        if path == "/stats":
            if request.method != "GET":
                raise BadRequest("use GET /stats", status=405)
            return _Answer(200, json_body(self.stats_payload()))
        return _Answer(
            404, error_body("not_found", f"no route for {path!r}")
        )

    def _metrics_answer(self, request: HTTPRequest) -> _Answer:
        # Refresh the point-in-time gauges (process runtime, SLO
        # windows) so every scrape sees current values.
        if self.metrics.enabled:
            export_process_gauges(self.metrics)
            self.slo.export_gauges(self.metrics)
        snapshot = self.metrics.snapshot()
        if request.params.get("format") == "json":
            return _Answer(
                200, snapshot.to_json(indent=None).encode("utf-8")
            )
        body = snapshot.to_prometheus().encode("utf-8")
        answer = _Answer(200, body)
        return answer

    def stats_payload(self) -> dict:
        """Everything ``GET /stats`` reports, as one JSON-able dict."""
        with self.service._lock:
            service_stats = dataclasses.asdict(self.service.stats)
            inflight = self.service._inflight
        return {
            "service": service_stats,
            "inflight": inflight,
            "front_end": dataclasses.asdict(self.stats),
            "draining": self._draining,
        }

    # ------------------------------------------------------------------
    # /suggest
    # ------------------------------------------------------------------

    def _parse_suggest(self, request: HTTPRequest) -> tuple[str, int]:
        if request.method == "GET":
            query = request.params.get("q")
            raw_k = request.params.get("k")
        else:
            payload = request.json()
            query = payload.get("query", payload.get("q"))
            raw_k = payload.get("k")
        if not query or not isinstance(query, str):
            raise BadRequest(
                "missing query: pass ?q= (GET) or a JSON body with "
                "a 'query' field (POST)"
            )
        if raw_k is None:
            k = self.config.default_k
        else:
            try:
                k = int(raw_k)
            except (TypeError, ValueError):
                raise BadRequest(f"invalid k {raw_k!r}") from None
        if not 1 <= k <= MAX_K:
            raise BadRequest(f"k must be in [1, {MAX_K}], got {k}")
        return query, k

    async def _suggest(self, request: HTTPRequest, request_id: str,
                       log_fields: dict) -> _Answer:
        query, k = self._parse_suggest(request)
        log_fields["query"] = query
        log_fields["k"] = k
        service = self.service
        compute = partial(self._compute_suggest, query, k, request_id)
        if not self.config.single_flight:
            return await compute()
        # Normalized key: trivially rewritten duplicates ("Tree  ICDT"
        # vs "tree icdt") coalesce onto one flight, same as they share
        # one result-cache slot.
        key = (tuple(service.corpus.tokenizer.tokenize(query)), k)
        answer, coalesced = await self.singleflight.run(key, compute)
        # A follower shares the leader's computation, so its span tree
        # (and flight entry) carries the *leader's* correlation id;
        # the access-log flag is how the two ids are reconciled.
        log_fields["coalesced"] = coalesced
        if coalesced:
            self.stats.coalesced_total += 1
            if self.metrics.enabled:
                self.metrics.inc("coalesced_queries_total")
        else:
            self.stats.singleflight_leaders_total += 1
            if self.metrics.enabled:
                self.metrics.inc("singleflight_leaders_total")
        return answer

    async def _compute_suggest(
        self, query: str, k: int, request_id: str
    ) -> _Answer:
        """One backend execution: admit → executor → JSON bytes.

        Admission happens here, on the event loop, *inside* the
        single-flight leader — so N coalesced arrivals consume one
        admission slot, and a shed request never occupies an executor
        thread.  Overloaded becomes the shared 503 answer (every
        coalesced waiter backs off identically) rather than an
        exception, so it is fanned out, not re-raised N times.
        """
        service = self.service
        try:
            service.admit(1)
        except Overloaded as error:
            return self._overloaded_answer(error)
        loop = asyncio.get_running_loop()
        try:
            suggestions, stats = await loop.run_in_executor(
                self._executor,
                partial(
                    service.suggest_detailed,
                    query, k, pre_admitted=True, trace_id=request_id,
                ),
            )
        except QueryError as error:
            return _Answer(
                400, error_body("bad_query", str(error))
            )
        except Overloaded as error:
            return self._overloaded_answer(error)
        finally:
            service.release(1)
        payload = {
            "query": query,
            "k": k,
            "suggestions": [
                {
                    "text": s.text,
                    "score": s.score,
                    "result_type": s.result_type,
                }
                for s in suggestions
            ],
            "partial": bool(stats.partial),
            "cache_hit": stats.result_cache_hits > 0,
        }
        outcome = "partial" if stats.partial else "served"
        return _Answer(200, json_body(payload), outcome=outcome)

    def _overloaded_answer(self, error: Overloaded) -> _Answer:
        retry_after = error.retry_after
        if retry_after is None:
            retry_after = self.service.retry_after_hint()
        return _Answer(
            503,
            error_body(
                "overloaded", str(error), retry_after=retry_after
            ),
            retry_after=retry_after,
        )
