"""The network serving tier: a stdlib-``asyncio`` HTTP front-end.

Layering (see ``docs/http_api.md``):

* :mod:`repro.net.http` — HTTP/1.1 request parsing and response
  formatting, pure functions over bytes (no I/O, unit-testable);
* :mod:`repro.net.singleflight` — coalescing of concurrent identical
  computations on one event loop;
* :mod:`repro.net.server` — :class:`HTTPFrontEnd`, the asyncio
  listener that runs :class:`~repro.core.server.SuggestionService`
  calls on a bounded thread executor, reusing the service's admission
  control / deadlines / circuit breaker as backpressure and draining
  gracefully on SIGTERM.
"""

from repro.net.http import (
    BadRequest,
    HTTPRequest,
    build_response,
    json_body,
    parse_request_head,
)
from repro.net.server import HTTPFrontEnd, ServeConfig
from repro.net.singleflight import SingleFlight

__all__ = [
    "BadRequest",
    "HTTPFrontEnd",
    "HTTPRequest",
    "ServeConfig",
    "SingleFlight",
    "build_response",
    "json_body",
    "parse_request_head",
]
