"""Single-flight coalescing for one asyncio event loop.

Real query traffic is bursty *and* skewed: when a hot query misses the
result cache, many identical requests are typically in flight at once,
and without coalescing each would run the full computation.  A
:class:`SingleFlight` keyed on the normalized query collapses them:
the first arrival (the *leader*) computes; every concurrent identical
arrival (a *follower*) awaits the leader's future and receives the
very same result object — for the HTTP tier, the same response bytes,
so fan-out is byte-identical by construction.

The map holds only in-flight keys: the moment the leader finishes
(successfully or not) the key is removed, so a *later* request starts
a fresh flight — coalescing is about concurrency, caching is the
result LRU's job.

Failures propagate: a follower coalesced onto a flight that raises
gets the same exception.  Results are stored as ``(ok, value)``
envelopes rather than ``Future.set_exception`` so an un-awaited
failure never triggers asyncio's "exception was never retrieved" log
noise.

Single-loop only — the dict is touched exclusively from event-loop
callbacks, which is what makes it lock-free.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, TypeVar

T = TypeVar("T")


class SingleFlight:
    """Coalesce concurrent identical computations (see module doc)."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}
        #: Lifetime counters, mirrored into the front-end's metrics.
        self.leaders = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self,
        key: Hashable,
        compute: Callable[[], Awaitable[T]],
    ) -> tuple[T, bool]:
        """Run ``compute`` once per concurrent ``key``; share the result.

        Returns ``(result, coalesced)`` — ``coalesced`` is True when
        this caller rode an already-in-flight computation instead of
        starting its own.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            ok, value = await existing
            if not ok:
                raise value
            return value, True
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.leaders += 1
        try:
            value = await compute()
        except BaseException as error:
            future.set_result((False, error))
            raise
        else:
            future.set_result((True, value))
            return value, False
        finally:
            # Remove *before* followers wake: anything arriving after
            # this point is a new flight, not a stale coalesce.
            del self._inflight[key]
