"""Minimal HTTP/1.1 wire handling: parse requests, format responses.

Everything here is a pure function over bytes — no sockets, no event
loop — so the protocol corner cases (malformed request lines, header
limits, keep-alive negotiation) are unit-testable without a server.
The asyncio plumbing lives in :mod:`repro.net.server`.

Scope is deliberately the subset a JSON API needs: request line +
headers + optional ``Content-Length`` body, persistent connections,
and ``Connection`` negotiation.  Chunked request bodies are rejected
with 411 (length required) rather than half-supported.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Methods the parser accepts at all; routing narrows further.
KNOWN_METHODS = frozenset(
    ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH")
)

#: Reason phrases for every status the front-end emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """A request the parser refuses; carries the HTTP status to send.

    Attributes:
        status: the response status code (400 unless a more specific
            one applies — 405, 411, 413, 431 ...).
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HTTPRequest:
    """One parsed request (head only; the body is read separately)."""

    method: str
    target: str
    version: str
    headers: dict[str, str]
    path: str = ""
    params: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Persistent-connection negotiation (RFC 9112 §9.3).

        HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
        HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def content_length(self, max_bytes: int) -> int:
        """The validated request-body length (0 when absent).

        Raises:
            BadRequest: 400 on a malformed ``Content-Length``, 411 on
                a chunked body, 413 when the declared length exceeds
                ``max_bytes``.
        """
        if "transfer-encoding" in self.headers:
            raise BadRequest(
                "chunked request bodies are not supported; send "
                "Content-Length",
                status=411,
            )
        raw = self.headers.get("content-length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            raise BadRequest(f"invalid Content-Length {raw!r}") from None
        if length < 0:
            raise BadRequest(f"invalid Content-Length {raw!r}")
        if length > max_bytes:
            raise BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{max_bytes}-byte limit",
                status=413,
            )
        return length

    def json(self) -> dict:
        """The body decoded as a JSON object.

        Raises:
            BadRequest: on undecodable bytes, invalid JSON, or a
                non-object top level.
        """
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequest("JSON body must be an object")
        return payload


def parse_request_head(head: bytes) -> HTTPRequest:
    """Parse the request line + headers (everything before the body).

    ``head`` is the raw bytes up to and including the blank line.
    Header names are lower-cased; duplicate headers keep the last
    value (none of the headers this API reads are list-valued).

    Raises:
        BadRequest: on any malformation — non-ASCII head, bad request
            line, unsupported version, header lines without a colon,
            or obs-fold continuation lines.
    """
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError:
        raise BadRequest("request head is not ASCII") from None
    lines = text.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not all(parts):
        raise BadRequest(f"malformed request line {request_line!r}")
    method, target, version = parts
    if method.upper() != method or method not in KNOWN_METHODS:
        raise BadRequest(f"unknown method {method!r}")
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise BadRequest(f"unsupported HTTP version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if line[0] in " \t":
            raise BadRequest("obsolete header line folding")
        name, colon, value = line.partition(":")
        if not colon or not name or name != name.strip():
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.lower()] = value.strip()
    request = HTTPRequest(
        method=method, target=target, version=version, headers=headers
    )
    request.path, request.params = parse_target(target)
    return request


def parse_target(target: str) -> tuple[str, dict[str, str]]:
    """Split a request target into a decoded path + query params.

    Raises:
        BadRequest: when the target is not origin-form (``/path``).
    """
    if not target.startswith("/"):
        raise BadRequest(f"unsupported request target {target!r}")
    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))
    return unquote(split.path), params


def json_body(payload: object) -> bytes:
    """Canonical JSON encoding for response bodies.

    Sorted keys and fixed separators so one logical answer is one byte
    sequence — the single-flight fan-out and its benchmark assert
    byte-identical payloads across coalesced responses.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def build_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one HTTP/1.1 response, ``Content-Length`` framed."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Server: xclean",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("ascii") + body


def error_body(error: str, message: str, **extra: object) -> bytes:
    """The canonical error payload shape (see docs/http_api.md)."""
    payload: dict[str, object] = {"error": error, "message": message}
    payload.update(extra)
    return json_body(payload)


#: The correlation-id header, inbound (honored) and outbound (echoed).
REQUEST_ID_HEADER = "x-request-id"

#: Characters a client-supplied request id may use; anything else is
#: discarded and a fresh id is minted (log-injection hygiene: the id
#: lands verbatim in JSONL access logs and trace attributes).
_REQUEST_ID_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


def valid_request_id(value: str | None) -> bool:
    """Whether an inbound ``X-Request-Id`` is safe to adopt."""
    if not value or len(value) > 64:
        return False
    return all(ch in _REQUEST_ID_OK for ch in value)


def retry_after_header(seconds: float | None) -> tuple[str, str]:
    """A ``Retry-After`` header from a (possibly sub-second) hint.

    The header's delta-seconds form is a non-negative integer, so
    sub-second hints round *up* — advertising 0 would invite an
    immediate retry into the same overload.
    """
    if seconds is None or seconds <= 0:
        value = 1
    else:
        value = int(seconds) + (1 if seconds != int(seconds) else 0)
    return ("Retry-After", str(max(1, value)))
