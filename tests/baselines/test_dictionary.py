"""Tests for the SE1/SE2 search-engine simulators."""

import pytest

from repro.baselines.dictionary import (
    DictionaryCorrector,
    LogBasedCorrector,
)
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import build_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture
def corpus():
    # 'serum' corpus: tigi frequent, tige rare (the paper's example of
    # log-frequency bias correcting a *correct* rare word).
    records = [("item", [("text", "tigi serum shampoo")])] * 6
    records += [("item", [("text", "tige serum immunology")])]
    records += [("item", [("text", "great barrier reef")])] * 3
    return build_corpus_index(XMLDocument(build_tree(("db", records))))


class TestSilenceOnCleanQueries:
    def test_known_words_no_suggestion(self, corpus):
        se = DictionaryCorrector(corpus)
        assert se.suggest("great barrier reef") == []

    def test_rare_but_correct_word_untouched(self, corpus):
        # In-vocabulary words are never "corrected", even rare ones.
        se = DictionaryCorrector(corpus)
        assert se.suggest("tige serum") == []


class TestFrequencyBias:
    def test_corrects_to_most_frequent(self, corpus):
        se = DictionaryCorrector(corpus)
        # 'tigee' is OOV; both tigi (freq 6) and tige (freq 1) are at
        # distance 1 — frequency wins.
        suggestions = se.suggest("tigee serum")
        assert suggestions[0].tokens == ("tigi", "serum")

    def test_at_most_one_suggestion(self, corpus):
        se = DictionaryCorrector(corpus)
        assert len(se.suggest("tigee serum", k=10)) == 1

    def test_unfixable_word_kept_as_is(self, corpus):
        se = DictionaryCorrector(corpus)
        suggestions = se.suggest("zzzzzzzzz serum")
        # No variant found: the word stays, and since nothing changed
        # overall the engine stays silent.
        assert suggestions == []

    def test_empty_query_raises(self, corpus):
        with pytest.raises(QueryError):
            DictionaryCorrector(corpus).suggest("of the")


class TestLogKnowledge:
    def test_log_entry_wins(self, corpus):
        se1 = LogBasedCorrector(
            corpus, misspelling_map={"sreum": "serum"}
        )
        suggestions = se1.suggest("tigi sreum")
        assert suggestions[0].tokens == ("tigi", "serum")

    def test_log_entry_must_be_in_vocabulary(self, corpus):
        # A log correction pointing at an unindexed word falls through
        # to frequency-based correction.
        se1 = LogBasedCorrector(
            corpus, misspelling_map={"tigee": "nonexistentword"}
        )
        suggestions = se1.suggest("tigee serum")
        assert suggestions[0].tokens == ("tigi", "serum")

    def test_fallback_matches_se2(self, corpus):
        se1 = LogBasedCorrector(corpus, misspelling_map={})
        se2 = DictionaryCorrector(corpus)
        assert [s.tokens for s in se1.suggest("tigee serum")] == [
            s.tokens for s in se2.suggest("tigee serum")
        ]
