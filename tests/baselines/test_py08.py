"""Tests for the PY08 baseline, including its two documented biases."""

import pytest

from repro.baselines.py08 import PY08Config, PY08Suggester
from repro.exceptions import ConfigurationError, QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import build_tree
from repro.xmltree.document import XMLDocument


def figure1_corpus():
    """A corpus realizing Figure 1's bias scenario.

    'insurance' is frequent and co-occurs with 'health' inside records;
    'instance' is rare (high idf) and only connects to 'health' through
    the root.
    """
    records = []
    for _ in range(8):
        records.append(
            ("record", [("text", "health insurance policy coverage")])
        )
    records.append(("record", [("text", "singular instance")]))
    records.append(("record", [("text", "health checkup")]))
    tree = build_tree(("db", records))
    return build_corpus_index(XMLDocument(tree))


@pytest.fixture
def corpus():
    return figure1_corpus()


class TestFigure1Bias:
    def test_rare_token_outscores_frequent(self, corpus):
        # ed(insurence, instance) = 3: Figure 1 implicitly runs at eps=3.
        suggester = PY08Suggester(corpus, config=PY08Config(max_errors=3))
        suggestions = suggester.suggest("health insurence", k=3)
        assert suggestions, "PY08 must return suggestions"
        # The bias: 'instance' (rare, idf-heavy) ranks above 'insurance'
        # even though it never co-occurs with 'health'.
        tokens = [s.tokens for s in suggestions]
        assert ("health", "instance") in tokens
        rank_instance = tokens.index(("health", "instance"))
        rank_insurance = (
            tokens.index(("health", "insurance"))
            if ("health", "insurance") in tokens
            else len(tokens)
        )
        assert rank_instance < rank_insurance

    def test_no_connectivity_requirement(self, corpus):
        """PY08 happily suggests keyword pairs that never co-occur."""
        suggester = PY08Suggester(
            corpus,
            config=PY08Config(max_errors=2, use_segments=False),
        )
        suggestions = suggester.suggest("health instanse", k=1)
        assert suggestions[0].tokens == ("health", "instance")


class TestMechanics:
    def test_scores_descending(self, corpus):
        suggester = PY08Suggester(corpus)
        scores = [s.score for s in suggester.suggest("health insurence")]
        assert scores == sorted(scores, reverse=True)

    def test_k_respected(self, corpus):
        suggester = PY08Suggester(corpus)
        assert len(suggester.suggest("health insurence", k=1)) == 1

    def test_empty_query_raises(self, corpus):
        with pytest.raises(QueryError):
            PY08Suggester(corpus).suggest("the of")

    def test_unmatchable_keyword(self, corpus):
        assert PY08Suggester(corpus).suggest("zzzzzzzzzz health") == []

    def test_gamma_limits_combinations(self, corpus):
        small = PY08Suggester(corpus, config=PY08Config(gamma=1))
        small.suggest("health insurence")
        assert small.last_stats.candidates_evaluated == 1

    def test_top_combinations_are_best(self, corpus):
        """The lazy enumeration must return the true top combinations."""
        suggester = PY08Suggester(
            corpus, config=PY08Config(gamma=1000, use_segments=False)
        )
        suggestions = suggester.suggest("health insurence", k=100)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_exponential_penalty_mode(self, corpus):
        exp = PY08Suggester(
            corpus,
            config=PY08Config(penalty="exponential", beta=5.0),
        )
        # A strong distance penalty suppresses the rare-token bias:
        # 'insurance' (distance 1) now wins over 'instance' (distance 3).
        top = exp.suggest("health insurence", k=1)[0]
        assert top.tokens == ("health", "insurance")

    def test_segment_bonus_rewards_cooccurrence(self, corpus):
        with_seg = PY08Suggester(
            corpus, config=PY08Config(max_errors=3, use_segments=True)
        )
        without_seg = PY08Suggester(
            corpus, config=PY08Config(max_errors=3, use_segments=False)
        )
        s_with = {
            s.tokens: s.score
            for s in with_seg.suggest("health insurence", k=10)
        }
        s_without = {
            s.tokens: s.score
            for s in without_seg.suggest("health insurence", k=10)
        }
        pair = ("health", "insurance")
        # 'health insurance' co-occurs, so only it gains the bonus.
        assert s_with[pair] > s_without[pair]
        lone = ("health", "instance")
        assert s_with[lone] == pytest.approx(s_without[lone])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PY08Config(gamma=0)
        with pytest.raises(ConfigurationError):
            PY08Config(max_errors=-1)
        with pytest.raises(ConfigurationError):
            PY08Config(penalty="nope")

    def test_multiple_passes_read_more_than_xclean(self, corpus):
        """The efficiency story of Table VI: PY08 reads far more."""
        from repro.core.cleaner import XCleanSuggester
        from repro.core.config import XCleanConfig

        py08 = PY08Suggester(corpus)
        xclean = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=2, gamma=None)
        )
        py08.suggest("health insurence")
        xclean.suggest("health insurence")
        assert (
            py08.last_stats.postings_read
            > xclean.last_stats.postings_read
        )
