"""Tests for FastSS variant indexes against the brute-force oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.fastss.generator import VariantGenerator
from repro.fastss.index import (
    BruteForceVariants,
    FastSSIndex,
    PartitionedFastSSIndex,
    Variant,
)

VOCAB = [
    "tree",
    "trees",
    "trie",
    "tried",
    "icde",
    "icdt",
    "vldb",
    "insurance",
    "instance",
    "architecture",
    "archetype",
    "classification",
    "clustering",
    "verification",
    "verifications",
]

vocab_strategy = st.lists(
    st.text(alphabet="abcdest", min_size=1, max_size=14),
    min_size=0,
    max_size=25,
)
query_strategy = st.text(alphabet="abcdest", min_size=1, max_size=14)


class TestFastSSIndex:
    def test_exact_match_included(self):
        index = FastSSIndex(VOCAB, max_errors=1)
        variants = index.variants("tree")
        assert Variant(0, "tree") in variants

    def test_distance_one_variants(self):
        index = FastSSIndex(VOCAB, max_errors=1)
        tokens = [v.token for v in index.variants("tree")]
        assert tokens == ["tree", "trees", "trie"]  # sorted by (dist, token)

    def test_out_of_vocabulary_query(self):
        index = FastSSIndex(VOCAB, max_errors=1)
        tokens = [v.token for v in index.variants("tre")]
        assert "tree" in tokens
        assert all(t in VOCAB for t in tokens)

    def test_lower_eps_at_query_time(self):
        index = FastSSIndex(VOCAB, max_errors=2)
        wide = {v.token for v in index.variants("tree", 2)}
        narrow = {v.token for v in index.variants("tree", 1)}
        assert narrow <= wide
        assert "tried" in wide and "tried" not in narrow

    def test_higher_eps_than_built_raises(self):
        index = FastSSIndex(VOCAB, max_errors=1)
        with pytest.raises(ConfigurationError):
            index.variants("tree", 2)

    def test_negative_errors_rejected(self):
        with pytest.raises(ConfigurationError):
            FastSSIndex(VOCAB, max_errors=-1)

    def test_duplicates_ignored(self):
        index = FastSSIndex(["tree", "tree"], max_errors=1)
        assert len(index) == 1

    def test_results_sorted_deterministically(self):
        index = FastSSIndex(VOCAB, max_errors=2)
        variants = index.variants("tree")
        assert variants == sorted(variants)

    @settings(max_examples=50)
    @given(vocab_strategy, query_strategy)
    def test_matches_brute_force(self, vocab, query):
        index = FastSSIndex(vocab, max_errors=2)
        oracle = BruteForceVariants(vocab, max_errors=2)
        assert index.variants(query) == oracle.variants(query)


class TestPartitionedIndex:
    def test_long_tokens_found(self):
        index = PartitionedFastSSIndex(
            VOCAB, max_errors=2, partition_threshold=6
        )
        tokens = [v.token for v in index.variants("verifcation")]
        assert "verification" in tokens

    def test_short_tokens_found(self):
        index = PartitionedFastSSIndex(
            VOCAB, max_errors=2, partition_threshold=6
        )
        tokens = [v.token for v in index.variants("tre")]
        assert "tree" in tokens

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionedFastSSIndex(VOCAB, partition_threshold=1)

    def test_eps_guard(self):
        index = PartitionedFastSSIndex(VOCAB, max_errors=1)
        with pytest.raises(ConfigurationError):
            index.variants("tree", 2)

    @settings(max_examples=50)
    @given(vocab_strategy, query_strategy)
    def test_matches_brute_force(self, vocab, query):
        index = PartitionedFastSSIndex(
            vocab, max_errors=2, partition_threshold=5
        )
        oracle = BruteForceVariants(vocab, max_errors=2)
        assert index.variants(query) == oracle.variants(query)

    @settings(max_examples=30)
    @given(vocab_strategy, query_strategy)
    def test_matches_brute_force_eps1(self, vocab, query):
        index = PartitionedFastSSIndex(
            vocab, max_errors=1, partition_threshold=5
        )
        oracle = BruteForceVariants(vocab, max_errors=1)
        assert index.variants(query) == oracle.variants(query)


class TestVariantGenerator:
    def test_caches_results(self):
        gen = VariantGenerator(VOCAB, max_errors=1)
        first = gen.variants("tree")
        second = gen.variants("tree")
        assert first is second

    def test_variant_tokens(self):
        gen = VariantGenerator(VOCAB, max_errors=1)
        assert gen.variant_tokens("tree") == ["tree", "trees", "trie"]

    def test_distance_of(self):
        gen = VariantGenerator(VOCAB, max_errors=1)
        assert gen.distance_of("tree", "trie") == 1
        assert gen.distance_of("tree", "tree") == 0
        assert gen.distance_of("tree", "icde") is None

    def test_unpartitioned_mode(self):
        gen = VariantGenerator(VOCAB, max_errors=1, partitioned=False)
        assert "trees" in gen.variant_tokens("tree")

    def test_per_eps_cache_keys(self):
        gen = VariantGenerator(VOCAB, max_errors=2)
        assert len(gen.variants("tree", 1)) < len(gen.variants("tree", 2))


class TestFreshCache:
    def test_shares_index_not_cache(self):
        gen = VariantGenerator(VOCAB, max_errors=1)
        view = gen.fresh_cache()
        assert view._index is gen._index
        first = gen.variants("tree")
        second = view.variants("tree")
        assert first == second
        assert first is not second  # separately memoized

    def test_view_results_equal_original(self):
        gen = VariantGenerator(VOCAB, max_errors=2)
        view = gen.fresh_cache()
        for word in ("tree", "insurance", "verifcation"):
            assert view.variants(word) == gen.variants(word)

    def test_view_keeps_radius(self):
        gen = VariantGenerator(VOCAB, max_errors=1)
        view = gen.fresh_cache()
        assert view.max_errors == 1
