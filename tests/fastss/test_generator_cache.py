"""Tests for the VariantGenerator LRU cache and its counters."""

from repro.fastss.generator import VariantGenerator

VOCAB = ["tree", "trees", "free", "icdt", "icde", "database"]


class TestCounters:
    def test_miss_then_hit(self):
        generator = VariantGenerator(VOCAB, max_errors=1)
        generator.variants("tree")
        assert (generator.cache_misses, generator.cache_hits) == (1, 0)
        generator.variants("tree")
        assert (generator.cache_misses, generator.cache_hits) == (1, 1)

    def test_distinct_eps_is_distinct_entry(self):
        generator = VariantGenerator(VOCAB, max_errors=2)
        generator.variants("tree", 1)
        generator.variants("tree", 2)
        assert generator.cache_misses == 2

    def test_fresh_cache_resets_counters_not_index(self):
        generator = VariantGenerator(VOCAB, max_errors=1)
        generator.variants("tree")
        fresh = generator.fresh_cache()
        assert (fresh.cache_hits, fresh.cache_misses) == (0, 0)
        assert fresh.variants("tree") == generator.variants("tree")
        assert fresh.cache_misses == 1


class TestLRU:
    def test_eviction_at_capacity(self):
        generator = VariantGenerator(VOCAB, max_errors=1, cache_size=2)
        generator.variants("tree")
        generator.variants("free")
        generator.variants("icdt")  # evicts "tree"
        generator.variants("tree")  # miss again
        assert generator.cache_misses == 4
        assert generator.cache_hits == 0

    def test_recent_use_protects_entry(self):
        generator = VariantGenerator(VOCAB, max_errors=1, cache_size=2)
        generator.variants("tree")
        generator.variants("free")
        generator.variants("tree")  # refresh "tree"
        generator.variants("icdt")  # evicts "free", not "tree"
        generator.variants("tree")
        assert generator.cache_hits == 2

    def test_results_unchanged_by_caching(self):
        cached = VariantGenerator(VOCAB, max_errors=1)
        uncached = VariantGenerator(VOCAB, max_errors=1, cache_size=1)
        for keyword in ("tree", "icdt", "tree", "xyz", "tree"):
            assert cached.variants(keyword) == uncached.variants(keyword)
