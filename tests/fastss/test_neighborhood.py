"""Tests for deletion neighborhoods."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fastss.edit_distance import edit_distance
from repro.fastss.neighborhood import (
    deletion_neighborhood,
    neighborhood_size_bound,
)

words = st.text(alphabet="abcd", max_size=8)


class TestNeighborhood:
    def test_zero_deletions(self):
        assert deletion_neighborhood("abc", 0) == {"abc"}

    def test_one_deletion(self):
        assert deletion_neighborhood("abc", 1) == {
            "abc",
            "bc",
            "ac",
            "ab",
        }

    def test_two_deletions(self):
        result = deletion_neighborhood("abc", 2)
        assert result == {"abc", "bc", "ac", "ab", "a", "b", "c"}

    def test_deletions_beyond_length(self):
        assert "" in deletion_neighborhood("ab", 5)

    def test_duplicate_characters_deduped(self):
        assert deletion_neighborhood("aa", 1) == {"aa", "a"}

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            deletion_neighborhood("abc", -1)

    @given(words, st.integers(min_value=0, max_value=3))
    def test_members_within_deletion_distance(self, word, k):
        for member in deletion_neighborhood(word, k):
            assert len(word) - len(member) <= k
            # Each member is a subsequence of word.
            it = iter(word)
            assert all(ch in it for ch in member)

    @given(words, st.integers(min_value=0, max_value=3))
    def test_contains_word_itself(self, word, k):
        assert word in deletion_neighborhood(word, k)

    @given(words, words)
    def test_fastss_property(self, s, t):
        """ed(s,t) <= k implies the k-neighborhoods intersect."""
        k = edit_distance(s, t)
        if k <= 3:
            ns = deletion_neighborhood(s, k)
            nt = deletion_neighborhood(t, k)
            assert ns & nt


class TestSizeBound:
    def test_exact_small_cases(self):
        # C(3,0)+C(3,1) = 4
        assert neighborhood_size_bound(3, 1) == 4
        # C(3,0)+C(3,1)+C(3,2) = 7
        assert neighborhood_size_bound(3, 2) == 7

    def test_zero_deletions(self):
        assert neighborhood_size_bound(10, 0) == 1

    @given(
        st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=0, max_size=8).filter(lambda w: len(set(w)) == len(w)),
        st.integers(min_value=0, max_value=3),
    )
    def test_bound_is_tight_for_distinct_chars(self, word, k):
        # With all-distinct characters every deletion yields a distinct
        # string, so the bound is achieved exactly.
        assert len(deletion_neighborhood(word, k)) == neighborhood_size_bound(
            len(word), k
        )
