"""Tests for edit distance: exact values, metric axioms, banded variant."""

from hypothesis import given
from hypothesis import strategies as st

from repro.fastss.edit_distance import (
    bounded_edit_distance,
    edit_distance,
    within_distance,
)

words = st.text(alphabet="abcde", max_size=10)


class TestExactValues:
    def test_identical(self):
        assert edit_distance("tree", "tree") == 0

    def test_single_substitution(self):
        assert edit_distance("icde", "icdt") == 1

    def test_single_insertion(self):
        assert edit_distance("tree", "trees") == 1

    def test_single_deletion(self):
        assert edit_distance("trees", "tree") == 1

    def test_transposition_costs_two(self):
        # Plain Levenshtein (no Damerau transposition).
        assert edit_distance("gerat", "great") == 2

    def test_paper_examples(self):
        assert edit_distance("tree", "trie") == 1
        assert edit_distance("insurence", "insurance") == 1
        assert edit_distance("insurence", "instance") == 3

    def test_empty_strings(self):
        assert edit_distance("", "") == 0
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3


class TestMetricAxioms:
    @given(words, words)
    def test_symmetry(self, s, t):
        assert edit_distance(s, t) == edit_distance(t, s)

    @given(words)
    def test_identity(self, s):
        assert edit_distance(s, s) == 0

    @given(words, words)
    def test_positivity(self, s, t):
        d = edit_distance(s, t)
        assert d >= 0
        assert (d == 0) == (s == t)

    @given(words, words, words)
    def test_triangle_inequality(self, s, t, u):
        assert edit_distance(s, u) <= edit_distance(s, t) + edit_distance(
            t, u
        )

    @given(words, words)
    def test_length_difference_lower_bound(self, s, t):
        assert edit_distance(s, t) >= abs(len(s) - len(t))

    @given(words, words)
    def test_max_length_upper_bound(self, s, t):
        assert edit_distance(s, t) <= max(len(s), len(t))


class TestBounded:
    def test_within_limit_returns_distance(self):
        assert bounded_edit_distance("tree", "trie", 2) == 1

    def test_beyond_limit_returns_none(self):
        assert bounded_edit_distance("tree", "xyzw", 2) is None

    def test_length_gap_short_circuit(self):
        assert bounded_edit_distance("ab", "abcdef", 2) is None

    def test_zero_limit(self):
        assert bounded_edit_distance("abc", "abc", 0) == 0
        assert bounded_edit_distance("abc", "abd", 0) is None

    def test_negative_limit(self):
        assert bounded_edit_distance("a", "a", -1) is None

    def test_exactly_at_limit(self):
        assert bounded_edit_distance("gerat", "great", 2) == 2

    @given(words, words, st.integers(min_value=0, max_value=4))
    def test_agrees_with_exact(self, s, t, limit):
        exact = edit_distance(s, t)
        bounded = bounded_edit_distance(s, t, limit)
        if exact <= limit:
            assert bounded == exact
        else:
            assert bounded is None

    @given(words, words, st.integers(min_value=0, max_value=4))
    def test_within_distance_consistent(self, s, t, limit):
        assert within_distance(s, t, limit) == (
            edit_distance(s, t) <= limit
        )
