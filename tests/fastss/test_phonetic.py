"""Tests for Soundex and phonetic variant generation (Section VI-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.fastss.generator import VariantGenerator
from repro.fastss.index import Variant
from repro.fastss.phonetic import (
    CompositeVariantGenerator,
    PhoneticIndex,
    soundex,
)


class TestSoundex:
    @pytest.mark.parametrize(
        "word,code",
        [
            ("robert", "R163"),
            ("rupert", "R163"),
            ("rubin", "R150"),
            ("ashcraft", "A261"),
            ("ashcroft", "A261"),
            ("tymczak", "T522"),
            ("pfister", "P236"),
            ("honeyman", "H555"),
        ],
    )
    def test_classic_vectors(self, word, code):
        assert soundex(word) == code

    def test_schuetze_schutze_match(self):
        # Example 1's umlaut transliteration case.
        assert soundex("schuetze") == soundex("schutze")

    def test_short_words_padded(self):
        assert soundex("lee") == "L000"

    def test_empty_input(self):
        assert soundex("") == "0000"
        assert soundex("123") == "0000"

    def test_case_insensitive(self):
        assert soundex("Robert") == soundex("ROBERT")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=12))
    def test_always_letter_plus_three(self, word):
        code = soundex(word)
        assert len(code) == 4
        assert code[0].isalpha() and code[0].isupper()
        assert all(c.isdigit() for c in code[1:])


class TestPhoneticIndex:
    VOCAB = ["schuetze", "schatz", "smith", "smyth", "robert", "rupert"]

    def test_sound_alike_found(self):
        index = PhoneticIndex(self.VOCAB)
        tokens = [v.token for v in index.variants("schutze")]
        assert "schuetze" in tokens

    def test_smith_smyth(self):
        index = PhoneticIndex(self.VOCAB)
        tokens = [v.token for v in index.variants("smith")]
        assert set(tokens) >= {"smith", "smyth"}

    def test_identical_token_is_distance_zero(self):
        index = PhoneticIndex(self.VOCAB)
        assert Variant(0, "smith") in index.variants("smith")

    def test_phonetic_distance_assigned(self):
        index = PhoneticIndex(self.VOCAB, distance=2)
        found = {v.token: v.distance for v in index.variants("smith")}
        assert found["smyth"] == 2

    def test_tight_radius_disables(self):
        index = PhoneticIndex(self.VOCAB, distance=2)
        assert index.variants("smith", max_errors=1) == []

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            PhoneticIndex(self.VOCAB, distance=-1)


class TestComposite:
    VOCAB = ["schuetze", "schatz", "smith", "smyth", "tree", "trie"]

    def make(self):
        return CompositeVariantGenerator(
            [
                VariantGenerator(self.VOCAB, max_errors=2),
                PhoneticIndex(self.VOCAB, distance=2),
            ],
            max_errors=2,
        )

    def test_union_of_sources(self):
        composite = self.make()
        tokens = composite.variant_tokens("schutze")
        # Edit distance 2 already finds schuetze; phonetic agrees.
        assert "schuetze" in tokens

    def test_phonetic_only_match_included(self):
        # 'smythe' is ed-2 from 'smyth' but also sounds like 'smith'
        # (ed 3) — only the phonetic source can contribute 'smith'.
        composite = self.make()
        found = {
            v.token: v.distance
            for v in composite.variants("smythe")
        }
        assert "smith" in found
        assert found["smith"] == 2

    def test_min_distance_wins(self):
        composite = self.make()
        found = {v.token: v.distance for v in composite.variants("tree")}
        # 'tree' itself: edit source gives 0, phonetic gives 0 — min 0.
        assert found["tree"] == 0
        assert found["trie"] == 1  # edit beats phonetic's 2

    def test_cache(self):
        composite = self.make()
        assert composite.variants("tree") is composite.variants("tree")

    def test_requires_sources(self):
        with pytest.raises(ConfigurationError):
            CompositeVariantGenerator([])

    def test_works_with_suggester(self):
        from repro.core.cleaner import XCleanSuggester
        from repro.core.config import XCleanConfig
        from repro.index.corpus import build_corpus_index
        from repro.xmltree.document import XMLDocument

        doc = XMLDocument.from_string(
            "<db>"
            "<rec><t>schuetze retrieval paper</t></rec>"
            "<rec><t>smith keyword search</t></rec>"
            "</db>"
        )
        corpus = build_corpus_index(doc)
        composite = CompositeVariantGenerator(
            [
                VariantGenerator(corpus.vocabulary.tokens(),
                                 max_errors=2),
                PhoneticIndex(corpus.vocabulary.tokens(), distance=2),
            ],
            max_errors=2,
        )
        suggester = XCleanSuggester(
            corpus,
            generator=composite,
            config=XCleanConfig(max_errors=2, gamma=None),
        )
        suggestions = suggester.suggest("schutze retrieval")
        assert suggestions
        assert suggestions[0].tokens == ("schuetze", "retrieval")
