"""Tests for the columnar (packed) posting lists."""

from array import array

from hypothesis import given
from hypothesis import strategies as st

from repro.index.inverted import (
    InvertedList,
    PackedInvertedList,
    PackedListCursor,
)
from repro.xmltree.dewey_packed import DeweyPacker

deweys = st.lists(
    st.integers(min_value=1, max_value=9), min_size=1, max_size=4
).map(tuple)


def packed_pair(codes):
    """A tuple list and its packed twin over the same postings."""
    ordered = sorted(set(codes))
    source = InvertedList(
        "tok", [(code, i % 3, i + 1) for i, code in enumerate(ordered)]
    )
    packer = DeweyPacker.for_codes(ordered)
    return source, PackedInvertedList.from_inverted(source, packer), packer


class TestPacking:
    def test_columns_parallel(self):
        source, packed, packer = packed_pair([(1,), (1, 2), (3,)])
        assert len(packed) == len(source)
        for i, (code, pid, tf) in enumerate(source):
            assert packed.keys[i] == packer.pack(code)
            assert packed.path_ids[i] == pid
            assert packed.tfs[i] == tf

    def test_int64_column_uses_array(self):
        _source, packed, packer = packed_pair([(1,), (2, 3)])
        assert packer.fits_int64
        assert isinstance(packed.keys, array)
        assert packed.keys.typecode == "q"

    def test_wide_keys_fall_back_to_list(self):
        codes = [tuple([1] * 12), tuple([2] * 12), (2**40, 5)]
        ordered = sorted(codes)
        source = InvertedList(
            "tok", [(c, 0, 1) for c in ordered]
        )
        packer = DeweyPacker.for_codes(ordered)
        assert not packer.fits_int64
        packed = PackedInvertedList.from_inverted(source, packer)
        assert isinstance(packed.keys, list)
        assert list(packed.keys) == sorted(packed.keys)


class TestFirstAtOrAfter:
    @given(
        st.lists(deweys, min_size=1, max_size=25),
        deweys,
        st.integers(min_value=0, max_value=10),
    )
    def test_matches_tuple_engine(self, codes, target, start):
        source, packed, packer = packed_pair(codes)
        start = min(start, len(source))
        expected = source.first_at_or_after(target, start)
        # The packed target may not exist in the list; size the packer
        # over it too so it is encodable.
        packer = DeweyPacker.for_codes(
            [c for c, _p, _t in source.postings] + [target]
        )
        packed = PackedInvertedList.from_inverted(source, packer)
        got = packed.first_at_or_after(packer.pack(target), start)
        assert got == expected

    def test_cursor_skip_counts(self):
        source, packed, packer = packed_pair(
            [(1,), (2,), (3,), (4,), (5,)]
        )
        cursor = PackedListCursor(packed)
        head = cursor.skip_to(packer.pack((4,)))
        assert head == packer.pack((4,))
        assert cursor.skips == 3
        assert not cursor.exhausted()
        assert cursor.skip_to(packer.pack((7,))) is None
        assert cursor.exhausted()
