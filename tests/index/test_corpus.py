"""Tests for corpus index construction."""

import pytest

from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


class TestInvertedLists:
    def test_tokens_present(self, corpus):
        for token in ("tree", "trees", "trie", "icde", "icdt"):
            assert token in corpus.inverted

    def test_trie_postings_in_document_order(self, corpus):
        postings = list(corpus.inverted.list_for("trie"))
        deweys = [p[0] for p in postings]
        assert deweys == [
            (1, 2, 1, 1),
            (1, 3, 2, 1),
            (1, 4, 1, 1),
            (1, 5, 1, 1),
            (1, 5, 2, 1),
        ]

    def test_posting_paths(self, corpus):
        postings = list(corpus.inverted.list_for("icde"))
        paths = {corpus.path_table.string_of(p[1]) for p in postings}
        assert paths == {"/a/c/x/t", "/a/d/x/t"}

    def test_term_frequency_is_per_leaf(self, corpus):
        for posting in corpus.inverted.list_for("trie"):
            assert posting[2] == 1


class TestSubtreeCounts:
    def test_root_count_is_total(self, corpus):
        assert corpus.subtree_length((1,)) == corpus.vocabulary.total_tokens

    def test_leaf_count(self, corpus):
        assert corpus.subtree_length((1, 2, 1, 1)) == 1

    def test_internal_count(self, corpus):
        # Subtree 1.2 holds trie, tree, icde.
        assert corpus.subtree_length((1, 2)) == 3

    def test_missing_node_is_zero(self, corpus):
        assert corpus.subtree_length((1, 9)) == 0


class TestPathNodeCounts:
    def test_entity_counts(self, corpus):
        table = corpus.path_table
        assert corpus.entity_count(table.id_of(("a", "d"))) == 2
        assert corpus.entity_count(table.id_of(("a", "c"))) == 2
        assert corpus.entity_count(table.id_of(("a",))) == 1

    def test_leaf_type_count(self, corpus):
        table = corpus.path_table
        # x nodes: 1 under b + 3 under c(1.2) + 3 + 2 under d + 2 under c(1.5)
        assert corpus.entity_count(table.id_of(("a", "c", "x"))) == 5

    def test_unknown_path_is_zero(self, corpus):
        assert corpus.entity_count(9999) == 0


class TestVocabularyIntegration:
    def test_total_tokens(self, corpus):
        assert corpus.vocabulary.total_tokens == 11

    def test_collection_frequency(self, corpus):
        assert corpus.vocabulary.collection_frequency("trie") == 5
        assert corpus.vocabulary.collection_frequency("icde") == 3

    def test_element_docs_are_leaves(self, corpus):
        assert corpus.vocabulary.element_doc_count == 11


class TestHelpers:
    def test_merged_list_skips_unknown_tokens(self, corpus):
        merged = corpus.merged_list(["trie", "notaword"])
        assert len(merged.drain()) == 5

    def test_max_path_depth(self, corpus):
        assert corpus.max_path_depth() == 4

    def test_describe_keys(self, corpus):
        description = corpus.describe()
        assert description["tokens"] == 5
        assert description["postings"] > 0
