"""Tests for the path index: f_w^p counts via prefix scanning."""

from hypothesis import given
from hypothesis import strategies as st

from repro.index.corpus import build_corpus_index
from repro.index.path_index import (
    PathIndex,
    path_counts_from_postings,
)
from repro.xmltree.builder import build_tree, paper_example_tree
from repro.xmltree.document import XMLDocument
from repro.xmltree.labelpath import PathTable


def counts_by_string(index, path_table, token):
    return {
        path_table.string_of(pid): count
        for pid, count in index.counts_for(token).items()
    }


class TestPaperExample:
    """The f_w^p values of Example 3 must come out of the real index."""

    def test_example3_counts(self):
        doc = XMLDocument(paper_example_tree())
        corpus = build_corpus_index(doc)
        table = corpus.path_table
        trie = counts_by_string(corpus.path_index, table, "trie")
        icde = counts_by_string(corpus.path_index, table, "icde")
        assert trie["/a/c"] == 2
        assert trie["/a/c/x"] == 3
        assert trie["/a/d"] == 2
        assert trie["/a/d/x"] == 2
        assert icde["/a/c"] == 1
        assert icde["/a/c/x"] == 1
        assert icde["/a/d"] == 2
        assert icde["/a/d/x"] == 2

    def test_root_counts_are_one(self):
        doc = XMLDocument(paper_example_tree())
        corpus = build_corpus_index(doc)
        table = corpus.path_table
        assert counts_by_string(corpus.path_index, table, "trie")["/a"] == 1


class TestPrefixScan:
    def test_single_posting(self):
        table = PathTable()
        pid = table.intern(("a", "b", "c"))
        counts = path_counts_from_postings([((1, 2, 3), pid, 1)], table)
        # One distinct node at each of the three depths.
        assert counts == {
            table.id_of(("a",)): 1,
            table.id_of(("a", "b")): 1,
            pid: 1,
        }

    def test_shared_ancestors_counted_once(self):
        table = PathTable()
        pid = table.intern(("a", "b"))
        counts = path_counts_from_postings(
            [((1, 1), pid, 1), ((1, 2), pid, 1)], table
        )
        assert counts[table.id_of(("a",))] == 1
        assert counts[pid] == 2

    def test_mixed_paths_at_same_depth(self):
        table = PathTable()
        pid_b = table.intern(("a", "b"))
        pid_c = table.intern(("a", "c"))
        counts = path_counts_from_postings(
            [((1, 1), pid_b, 1), ((1, 2), pid_c, 1)], table
        )
        assert counts[pid_b] == 1
        assert counts[pid_c] == 1

    def test_empty_postings(self):
        assert path_counts_from_postings([], PathTable()) == {}


class TestAgainstBruteForce:
    """Property: the prefix scan equals a recount from the tree."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["p", "q"]),
                st.sampled_from(["x", "y"]),
                st.sampled_from(["tree", "trie", "icde"]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_counts_match_tree_recount(self, rows):
        # Build a 3-level tree: root -> <p|q> -> <x|y>(token)
        spec_children = [
            (section, [(leaf_label, token)])
            for section, leaf_label, token in rows
        ]
        doc = XMLDocument(build_tree(("root", spec_children)))
        corpus = build_corpus_index(doc)

        # Brute force from the tree.
        for token in {r[2] for r in rows}:
            expected: dict[str, int] = {}
            for node, path in doc.iter_with_paths():
                if token in node.subtree_text().split():
                    key = "/" + "/".join(path)
                    expected[key] = expected.get(key, 0) + 1
            actual = counts_by_string(
                corpus.path_index, corpus.path_table, token
            )
            assert actual == expected


class TestPathIndexContainer:
    def test_missing_token(self):
        index = PathIndex()
        assert index.counts_for("nope") == {}
        assert index.f("nope", 0) == 0
        assert "nope" not in index

    def test_set_and_get(self):
        index = PathIndex()
        index.set_counts("tok", {3: 2})
        assert index.f("tok", 3) == 2
        assert len(index) == 1
        assert list(index.tokens()) == ["tok"]
