"""Snapshot v3: format validation, mmap loader, and engine parity."""

import os
import struct

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.exceptions import StorageError
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import build_corpus_index
from repro.index.snapshot import (
    MAGIC,
    build_snapshot,
    load_snapshot,
    snapshot_or_corpus,
    verify_snapshot,
)
from repro.index.storage import save_index
from repro.index.storage_binary import save_index_binary
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture
def corpus():
    return build_corpus_index(
        XMLDocument(paper_example_tree(), name="paper-example")
    )


@pytest.fixture
def snapshot_path(corpus, tmp_path):
    path = str(tmp_path / "index.xcs3")
    build_snapshot(corpus, path)
    return path


class TestRoundTrip:
    def test_name_and_counts(self, corpus, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert loaded.name == "paper-example"
        description = loaded.describe()
        assert description["tokens"] == len(corpus.vocabulary)
        assert (
            description["postings"]
            == corpus.inverted.total_postings()
        )
        assert description["paths"] == len(corpus.path_table)
        assert description["snapshot_bytes"]["total"] == os.path.getsize(
            snapshot_path
        )

    def test_postings_identical(self, corpus, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        for token in corpus.inverted.tokens():
            assert list(loaded.inverted.list_for(token)) == list(
                corpus.inverted.list_for(token)
            )

    def test_path_table_identical(self, corpus, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert list(loaded.path_table) == list(corpus.path_table)

    def test_subtree_counts_identical(self, corpus, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert (
            loaded.subtree_token_counts == corpus.subtree_token_counts
        )
        for dewey, count in corpus.subtree_token_counts.items():
            assert loaded.subtree_length(dewey) == count
        assert loaded.subtree_length((99, 99, 99)) == 0

    def test_path_statistics_identical(self, corpus, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert loaded.path_node_counts == corpus.path_node_counts
        assert loaded.path_token_totals() == corpus.path_token_totals()
        assert loaded.max_path_depth() == corpus.max_path_depth()
        for token in corpus.path_index.tokens():
            assert dict(loaded.path_index.counts_for(token)) == dict(
                corpus.path_index.counts_for(token)
            )

    def test_vocabulary_statistics(self, corpus, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        vocab, loaded_vocab = corpus.vocabulary, loaded.vocabulary
        assert loaded_vocab.total_tokens == vocab.total_tokens
        assert (
            loaded_vocab.element_doc_count == vocab.element_doc_count
        )
        assert sorted(loaded_vocab.tokens()) == sorted(vocab.tokens())
        for token in vocab:
            assert token in loaded_vocab
            assert loaded_vocab.collection_frequency(
                token
            ) == vocab.collection_frequency(token)
            assert loaded_vocab.background_probability(
                token
            ) == vocab.background_probability(token)
            assert loaded_vocab.max_tfidf(token) == pytest.approx(
                vocab.max_tfidf(token)
            )
        assert "no-such-token" not in loaded_vocab
        assert loaded_vocab.collection_frequency("no-such-token") == 0

    def test_embedded_fastss_matches_fresh_generator(
        self, corpus, tmp_path
    ):
        path = str(tmp_path / "fss.xcs3")
        build_snapshot(
            corpus, path, fastss_max_errors=2,
            fastss_partition_threshold=5,
        )
        loaded = load_snapshot(path)
        embedded = loaded.variant_generator(2)
        fresh = VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=2
        )
        for token in corpus.vocabulary:
            assert embedded.variants(token) == fresh.variants(token)

    def test_larger_radius_rebuilds_from_vocabulary(
        self, corpus, tmp_path
    ):
        path = str(tmp_path / "fss1.xcs3")
        build_snapshot(corpus, path, fastss_max_errors=1)
        loaded = load_snapshot(path)
        fresh = VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=3
        )
        generator = loaded.variant_generator(3)
        for token in corpus.vocabulary:
            assert generator.variants(token) == fresh.variants(token)

    def test_verify_snapshot(self, snapshot_path):
        summary = verify_snapshot(snapshot_path)
        assert summary["bytes"] == os.path.getsize(snapshot_path)
        assert summary["sections"] > 10


class TestEngineParity:
    """v1 -> v2 -> v3 must agree suggestion-for-suggestion."""

    QUERIES = ("confernce", "xml daabases", "keyword serach")

    @staticmethod
    def _rows(suggester, query):
        return [
            (s.tokens, s.score, s.result_type)
            for s in suggester.suggest(query, 10)
        ]

    def test_all_formats_identical_topk(self, corpus, tmp_path):
        from repro.index.storage import load_index
        from repro.index.storage_binary import load_index_binary

        v1 = str(tmp_path / "index.xci")
        v2 = str(tmp_path / "index.xcib")
        v3 = str(tmp_path / "index.xcs3")
        save_index(corpus, v1)
        save_index_binary(corpus, v2)
        build_snapshot(corpus, v3)
        config = XCleanConfig(max_errors=2)
        suggesters = [
            XCleanSuggester(source, config=config)
            for source in (
                corpus,
                load_index(v1),
                load_index_binary(v2),
                load_snapshot(v3),
            )
        ]
        for query in self.QUERIES:
            reference = self._rows(suggesters[0], query)
            for other in suggesters[1:]:
                assert self._rows(other, query) == reference

    def test_tuple_engine_over_snapshot(self, corpus, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        packed = XCleanSuggester(
            loaded, config=XCleanConfig(max_errors=2)
        )
        tuple_engine = XCleanSuggester(
            loaded, config=XCleanConfig(max_errors=2, engine="tuple")
        )
        for query in self.QUERIES:
            assert self._rows(tuple_engine, query) == self._rows(
                packed, query
            )

    def test_parallel_build_byte_identical(self, corpus, tmp_path):
        serial = str(tmp_path / "serial.xcs3")
        parallel = str(tmp_path / "parallel.xcs3")
        build_snapshot(corpus, serial)
        build_snapshot(corpus, parallel, workers=3)
        with open(serial, "rb") as a, open(parallel, "rb") as b:
            assert a.read() == b.read()


class TestCorruption:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.xcs3"
        path.write_bytes(b"")
        with pytest.raises(StorageError, match="empty"):
            load_snapshot(str(path))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.xcs3"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(StorageError, match="magic"):
            load_snapshot(str(path))

    def test_bad_version(self, tmp_path, snapshot_path):
        raw = bytearray(open(snapshot_path, "rb").read())
        struct.pack_into("<I", raw, 4, 99)
        path = tmp_path / "version.xcs3"
        path.write_bytes(raw)
        with pytest.raises(StorageError, match="version 99"):
            load_snapshot(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.xcs3"
        path.write_bytes(MAGIC + b"\x03")
        with pytest.raises(StorageError, match="truncated"):
            load_snapshot(str(path))

    def test_truncated_table(self, tmp_path, snapshot_path):
        raw = open(snapshot_path, "rb").read()
        path = tmp_path / "table.xcs3"
        path.write_bytes(raw[:24])
        with pytest.raises(StorageError, match="truncated"):
            load_snapshot(str(path))

    def test_corrupt_table_checksum(self, tmp_path, snapshot_path):
        raw = bytearray(open(snapshot_path, "rb").read())
        raw[20] ^= 0xFF  # inside the first table entry's name
        path = tmp_path / "crc.xcs3"
        path.write_bytes(raw)
        with pytest.raises(StorageError, match="checksum"):
            load_snapshot(str(path))

    def test_corrupt_payload_caught_by_verify(
        self, tmp_path, snapshot_path
    ):
        raw = bytearray(open(snapshot_path, "rb").read())
        raw[-1] ^= 0xFF  # flip a payload byte, table stays intact
        path = tmp_path / "payload.xcs3"
        path.write_bytes(raw)
        with pytest.raises(StorageError, match="checksum"):
            verify_snapshot(str(path))


class TestMmapBehavior:
    def test_survives_source_file_removal(
        self, corpus, snapshot_path, tmp_path
    ):
        loaded = load_snapshot(snapshot_path)
        os.remove(snapshot_path)
        # Postings are still served out of the (now unlinked) mapping.
        reference = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=2)
        )
        mapped = XCleanSuggester(
            loaded, config=XCleanConfig(max_errors=2)
        )
        for query in TestEngineParity.QUERIES:
            assert [
                (s.tokens, s.score) for s in mapped.suggest(query, 10)
            ] == [
                (s.tokens, s.score)
                for s in reference.suggest(query, 10)
            ]

    def test_close_is_best_effort(self, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        loaded.packed_view().get(next(iter(loaded.vocabulary)))
        loaded.close()  # exported views keep the mapping alive


class TestDispatch:
    def test_snapshot_or_corpus_sniffs_all_formats(
        self, corpus, tmp_path
    ):
        v1 = str(tmp_path / "a.xci")
        v2 = str(tmp_path / "a.xcib")
        v3 = str(tmp_path / "a.xcs3")
        save_index(corpus, v1)
        save_index_binary(corpus, v2)
        build_snapshot(corpus, v3)
        for path in (v1, v2, v3):
            loaded = snapshot_or_corpus(path)
            assert loaded.name == "paper-example"
            assert (
                loaded.inverted.total_postings()
                == corpus.inverted.total_postings()
            )

    def test_load_timed_under_index_load_stage(self, snapshot_path):
        from repro.obs import INDEX_LOAD_STAGE, MetricsRegistry

        registry = MetricsRegistry()
        load_snapshot(snapshot_path, metrics=registry)
        stages = registry.snapshot().as_dict()["stages"]
        assert stages[INDEX_LOAD_STAGE]["count"] == 1
