"""The write-ahead log (index/wal.py): framing, replay, torn tails.

The contract under test: a record is acknowledged exactly when
``append`` returns, and ``replay`` returns exactly the acknowledged
prefix — a crash anywhere (mid-append, mid-create) loses at most the
unacknowledged suffix and never yields a corrupt record.
"""

import json
import os
import struct

import pytest

from repro.exceptions import StorageError, UpdateError
from repro.index.wal import MAGIC, WalRecord, WriteAheadLog
from repro.obs import faults

SUBTREE = {"label": "title", "text": "spelling"}


def record(i: int) -> WalRecord:
    return WalRecord(op="add", dewey=(1, i + 1), subtree=SUBTREE)


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(str(tmp_path / "index.wal"))
    log.create(base_generation=3)
    yield log
    log.close()


class TestRecordValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(UpdateError):
            WalRecord(op="rename", dewey=(1,), subtree=SUBTREE)

    def test_empty_dewey_rejected(self):
        with pytest.raises(UpdateError):
            WalRecord(op="delete", dewey=())

    def test_non_positive_component_rejected(self):
        with pytest.raises(UpdateError):
            WalRecord(op="delete", dewey=(1, 0))

    def test_delete_carries_no_subtree(self):
        with pytest.raises(UpdateError):
            WalRecord(op="delete", dewey=(1, 2), subtree=SUBTREE)

    def test_add_needs_subtree(self):
        with pytest.raises(UpdateError):
            WalRecord(op="add", dewey=(1,))

    def test_dict_round_trip(self):
        rec = WalRecord(
            op="update", dewey=(1, 2, 3), subtree=SUBTREE,
            meta={"who": "test"},
        )
        assert WalRecord.from_dict(rec.as_dict()) == rec

    def test_malformed_dict_rejected(self):
        with pytest.raises(UpdateError):
            WalRecord.from_dict({"op": "add"})


class TestAppendReplay:
    def test_round_trip(self, wal):
        recs = [record(i) for i in range(5)]
        for rec in recs:
            wal.append(rec)
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == recs
        assert fresh.base_generation == 3

    def test_empty_log_replays_empty(self, wal):
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == []
        assert fresh.base_generation == 3

    def test_reset_drops_records_and_restamps(self, wal):
        wal.append(record(0))
        wal.reset(base_generation=4)
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == []
        assert fresh.base_generation == 4

    def test_append_requires_create(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "missing.wal"))
        with pytest.raises(StorageError):
            log.append(record(0))


class TestTornTails:
    """Crash simulations: the file ends (or is damaged) mid-frame."""

    def filled(self, wal, n=4):
        recs = [record(i) for i in range(n)]
        for rec in recs:
            wal.append(rec)
        wal.close()
        return recs

    def test_partial_payload_truncated(self, wal):
        recs = self.filled(wal)
        with open(wal.path, "r+b") as handle:
            handle.truncate(os.path.getsize(wal.path) - 3)
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == recs[:-1]

    def test_partial_length_word_truncated(self, wal):
        recs = self.filled(wal)
        size = os.path.getsize(wal.path)
        with open(wal.path, "ab") as handle:
            handle.write(b"\x07")  # 1 of 4 length bytes
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == recs
        # The torn byte is gone: appends extend a clean log.
        assert os.path.getsize(wal.path) == size

    def test_corrupt_byte_drops_frame_and_suffix(self, wal):
        recs = self.filled(wal)
        # Flip one payload byte of the second record: its CRC fails,
        # and nothing after it can be trusted either.
        data = open(wal.path, "rb").read()
        frame = struct.Struct("<II")
        offset = len(MAGIC)
        ends = []
        while offset + frame.size <= len(data):
            length, _ = frame.unpack_from(data, offset)
            offset += frame.size + length
            ends.append(offset)
        # ends[0] = header end; ends[1] = record 0 end; corrupt inside
        # record 1's payload.
        target = ends[1] + frame.size + 2
        damaged = (
            data[:target]
            + bytes([data[target] ^ 0xFF])
            + data[target + 1:]
        )
        with open(wal.path, "wb") as handle:
            handle.write(damaged)
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == recs[:1]
        assert os.path.getsize(wal.path) == ends[1]

    def test_appends_after_truncating_replay(self, wal):
        recs = self.filled(wal)
        with open(wal.path, "r+b") as handle:
            handle.truncate(os.path.getsize(wal.path) - 1)
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == recs[:-1]
        extra = record(9)
        fresh.append(extra)
        fresh.close()
        final = WriteAheadLog(wal.path)
        assert final.replay() == recs[:-1] + [extra]

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "junk.wal")
        with open(path, "wb") as handle:
            handle.write(b"NOTAWAL!" + b"\x00" * 32)
        with pytest.raises(StorageError):
            WriteAheadLog(path).replay()

    def test_torn_header_raises(self, tmp_path):
        # An interrupted create: magic landed, the header frame did
        # not.  Nothing is salvageable — recovery re-creates the log.
        path = str(tmp_path / "torn.wal")
        with open(path, "wb") as handle:
            handle.write(MAGIC + b"\x40\x00")
        with pytest.raises(StorageError):
            WriteAheadLog(path).replay()

    def test_unparseable_clean_frame_stops_replay(self, wal):
        recs = self.filled(wal, n=2)
        # A CRC-clean frame that is not a valid record (never written
        # by append; e.g. tampering): replay stops before it.
        import zlib
        payload = json.dumps({"op": "nope"}).encode()
        frame = struct.Struct("<II").pack(
            len(payload), zlib.crc32(payload)
        )
        with open(wal.path, "ab") as handle:
            handle.write(frame + payload)
        fresh = WriteAheadLog(wal.path)
        assert fresh.replay() == recs


class TestFaultSite:
    def test_append_raise_is_unacknowledged_but_whole(self, wal):
        """A fault at the ack point: the record may be on disk, but
        the caller never saw the append return — replay returning it
        is allowed (fully written) and losing it would be too."""
        wal.append(record(0))
        with faults.injected("wal.append:raise"):
            with pytest.raises(Exception):
                wal.append(record(1))
        wal.close()
        replayed = WriteAheadLog(wal.path).replay()
        assert replayed[:1] == [record(0)]
        assert len(replayed) in (1, 2)

    def test_append_corrupt_tail_recovers_prefix(self, wal):
        recs = [record(i) for i in range(3)]
        for rec in recs:
            wal.append(rec)
        # Corrupt the log file in place (deterministic offset), as a
        # chaos plan would; the acknowledged prefix must survive.
        with faults.injected("wal.append:corrupt", seed=7):
            wal.append(record(3))
        wal.close()
        replayed = WriteAheadLog(wal.path).replay()
        assert replayed == recs[: len(replayed)]
