"""Tests for sharded snapshot builds and the CRC-checked manifest."""

import json
import os

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.exceptions import ConfigurationError, StorageError
from repro.index.corpus import build_corpus_index
from repro.index.sharding import (
    DEFAULT_PARTITION_DEPTH,
    MANIFEST_NAME,
    assign_prefixes,
    build_sharded_snapshot,
    hash_shard_of,
    is_manifest,
    load_manifest,
    partition_prefixes,
    resolve_manifest_path,
    verify_sharded,
)
from repro.index.snapshot import load_snapshot
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture(scope="module")
def manifest(corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shards")
    return build_sharded_snapshot(corpus, str(directory), 2)


class TestAssignment:
    def test_every_prefix_assigned_exactly_once(self, corpus):
        prefixes = partition_prefixes(
            corpus, DEFAULT_PARTITION_DEPTH
        )
        assignment = assign_prefixes(corpus, 2)
        assert sorted(assignment) == prefixes
        assert set(assignment.values()) <= {0, 1}

    def test_range_assignment_is_contiguous(self, corpus):
        assignment = assign_prefixes(corpus, 3)
        owners = [
            assignment[prefix] for prefix in sorted(assignment)
        ]
        # Monotone non-decreasing == contiguous Dewey runs.
        assert owners == sorted(owners)

    def test_assignment_is_deterministic(self, corpus):
        for strategy in ("range", "hash"):
            first = assign_prefixes(corpus, 4, strategy=strategy)
            second = assign_prefixes(corpus, 4, strategy=strategy)
            assert first == second

    def test_hash_assignment_uses_crc_not_salted_hash(self, corpus):
        assignment = assign_prefixes(corpus, 4, strategy="hash")
        for prefix, shard in assignment.items():
            assert shard == hash_shard_of(prefix, 4)

    def test_more_shards_than_prefixes_still_covers(self, corpus):
        prefixes = partition_prefixes(
            corpus, DEFAULT_PARTITION_DEPTH
        )
        assignment = assign_prefixes(corpus, len(prefixes) + 3)
        assert sorted(assignment) == prefixes

    def test_invalid_arguments(self, corpus):
        with pytest.raises(ConfigurationError):
            assign_prefixes(corpus, 0)
        with pytest.raises(ConfigurationError):
            assign_prefixes(corpus, 2, strategy="modulo")


class TestManifest:
    def test_round_trip(self, manifest):
        loaded = load_manifest(
            os.path.join(manifest.directory, MANIFEST_NAME)
        )
        assert loaded == manifest

    def test_shares_sum_to_globals(self, manifest, corpus):
        assert sum(
            info.postings for info in manifest.shards
        ) == corpus.inverted.total_postings()
        assert manifest.entities == len(
            partition_prefixes(corpus, manifest.partition_depth)
        )

    def test_is_manifest_sniffing(self, manifest, tmp_path):
        assert is_manifest(manifest.directory)
        assert is_manifest(
            os.path.join(manifest.directory, MANIFEST_NAME)
        )
        shard_path = manifest.shard_paths()[0]
        assert not is_manifest(shard_path)
        assert not is_manifest(str(tmp_path / "missing.json"))
        assert resolve_manifest_path(
            manifest.directory
        ) == os.path.join(manifest.directory, MANIFEST_NAME)

    def test_crc_mismatch_rejected(self, manifest, tmp_path):
        path = os.path.join(manifest.directory, MANIFEST_NAME)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["totals"]["entities"] += 1
        tampered = tmp_path / MANIFEST_NAME
        tampered.write_text(json.dumps(document))
        with pytest.raises(StorageError, match="crc mismatch"):
            load_manifest(str(tampered))

    def test_share_sum_mismatch_rejected(self, manifest, tmp_path):
        from repro.index.sharding import _payload_crc

        path = os.path.join(manifest.directory, MANIFEST_NAME)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        # Re-sign the tampered payload so only the sum check can fire.
        document["shards"][0]["entities"] += 1
        payload = {
            key: value
            for key, value in document.items() if key != "crc"
        }
        document["crc"] = _payload_crc(payload)
        tampered = tmp_path / MANIFEST_NAME
        tampered.write_text(json.dumps(document))
        with pytest.raises(StorageError, match="sum"):
            load_manifest(str(tampered))

    def test_not_a_manifest_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(StorageError, match="not a shard manifest"):
            load_manifest(str(bogus))


class TestShardSnapshots:
    def test_shards_load_as_ordinary_snapshots(self, manifest):
        for path in manifest.shard_paths():
            shard = load_snapshot(path)
            # Global statistics are replicated into every shard.
            assert shard.vocabulary.total_tokens > 0

    def test_shard_postings_partition_the_corpus(
        self, manifest, corpus
    ):
        merged: dict[str, list] = {}
        for path in manifest.shard_paths():
            shard = load_snapshot(path)
            for token in corpus.inverted.tokens():
                postings = list(shard.inverted.list_for(token))
                merged.setdefault(token, []).extend(
                    (tuple(p[0]), p[1]) for p in postings
                )
        for token in corpus.inverted.tokens():
            expected = sorted(
                (tuple(p[0]), p[1])
                for p in corpus.inverted.list_for(token)
            )
            assert sorted(merged.get(token, [])) == expected

    def test_single_shard_answers_like_the_corpus(
        self, corpus, tmp_path
    ):
        manifest = build_sharded_snapshot(corpus, str(tmp_path), 1)
        config = XCleanConfig(max_errors=1)
        expected = XCleanSuggester(corpus, config=config).suggest(
            "tree icdt", 5
        )
        shard = load_snapshot(manifest.shard_paths()[0])
        got = XCleanSuggester(shard, config=config).suggest(
            "tree icdt", 5
        )
        assert [(s.tokens, s.score, s.result_type) for s in got] == [
            (s.tokens, s.score, s.result_type) for s in expected
        ]

    def test_hash_strategy_builds_and_verifies(self, corpus, tmp_path):
        manifest = build_sharded_snapshot(
            corpus, str(tmp_path), 3, strategy="hash"
        )
        assert all(info.range is None for info in manifest.shards)
        reports = verify_sharded(str(tmp_path))
        assert all(report["ok"] for report in reports)


class TestVerifySharded:
    def test_all_ok(self, manifest):
        reports = verify_sharded(manifest.directory)
        assert [r["shard_id"] for r in reports] == [0, 1]
        assert all(r["ok"] and r["error"] is None for r in reports)

    def test_detects_corruption(self, corpus, tmp_path):
        manifest = build_sharded_snapshot(corpus, str(tmp_path), 2)
        victim = manifest.shard_paths()[1]
        with open(victim, "r+b") as handle:
            handle.seek(os.path.getsize(victim) // 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        reports = verify_sharded(str(tmp_path))
        assert reports[0]["ok"]
        assert not reports[1]["ok"]
        assert reports[1]["error"]

    def test_detects_truncation(self, corpus, tmp_path):
        manifest = build_sharded_snapshot(corpus, str(tmp_path), 2)
        victim = manifest.shard_paths()[0]
        with open(victim, "r+b") as handle:
            handle.truncate(os.path.getsize(victim) - 16)
        reports = verify_sharded(str(tmp_path))
        assert not reports[0]["ok"]
