"""Tests for vocabulary statistics: background model and PY08 tf·idf."""

import math

import pytest

from repro.index.vocabulary import Vocabulary


@pytest.fixture
def vocab() -> Vocabulary:
    v = Vocabulary()
    # Element doc 1: "tree tree search"
    v.add_occurrence("tree", 2)
    v.add_occurrence("search", 1)
    v.register_element_doc({"tree": 2, "search": 1})
    # Element doc 2: "trie"
    v.add_occurrence("trie", 1)
    v.register_element_doc({"trie": 1})
    # Element doc 3: "tree"
    v.add_occurrence("tree", 1)
    v.register_element_doc({"tree": 1})
    return v


class TestMembership:
    def test_contains(self, vocab):
        assert "tree" in vocab
        assert "missing" not in vocab

    def test_len(self, vocab):
        assert len(vocab) == 3

    def test_iteration(self, vocab):
        assert set(vocab) == {"tree", "search", "trie"}


class TestBackgroundModel:
    def test_total_tokens(self, vocab):
        assert vocab.total_tokens == 5

    def test_collection_frequency(self, vocab):
        assert vocab.collection_frequency("tree") == 3
        assert vocab.collection_frequency("missing") == 0

    def test_background_probability(self, vocab):
        assert vocab.background_probability("tree") == 3 / 5
        assert vocab.background_probability("missing") == 0.0

    def test_background_probability_empty_vocab(self):
        assert Vocabulary().background_probability("x") == 0.0

    def test_probabilities_sum_to_one(self, vocab):
        total = sum(vocab.background_probability(t) for t in vocab)
        assert abs(total - 1.0) < 1e-12


class TestPY08Statistics:
    def test_element_doc_count(self, vocab):
        assert vocab.element_doc_count == 3

    def test_element_df(self, vocab):
        assert vocab.element_document_frequency("tree") == 2
        assert vocab.element_document_frequency("trie") == 1

    def test_max_relative_tf(self, vocab):
        # tree: max(2/3, 1/1) = 1.0
        assert vocab.max_relative_tf("tree") == 1.0
        assert vocab.max_relative_tf("search") == 1 / 3

    def test_idf(self, vocab):
        assert abs(vocab.idf("trie") - math.log(3 / 1)) < 1e-12
        assert abs(vocab.idf("tree") - math.log(3 / 2)) < 1e-12

    def test_idf_unknown_token(self, vocab):
        assert vocab.idf("missing") == 0.0

    def test_max_tfidf_prefers_rare(self, vocab):
        # The PY08 bias: rare 'trie' outscores frequent 'tree'... here
        # both have max rel tf 1.0, so idf decides.
        assert vocab.max_tfidf("trie") > vocab.max_tfidf("tree")

    def test_empty_element_doc_ignored_for_stats(self):
        v = Vocabulary()
        v.register_element_doc({})
        assert v.element_doc_count == 1
        assert v.max_relative_tf("x") == 0.0


class TestPersistenceRows:
    def test_roundtrip(self, vocab):
        rows = list(vocab.export_rows())
        rebuilt = Vocabulary.from_rows(rows, vocab.element_doc_count)
        assert rebuilt.total_tokens == vocab.total_tokens
        assert rebuilt.element_doc_count == vocab.element_doc_count
        for token in vocab:
            assert rebuilt.collection_frequency(
                token
            ) == vocab.collection_frequency(token)
            assert rebuilt.element_document_frequency(
                token
            ) == vocab.element_document_frequency(token)
            assert rebuilt.max_relative_tf(token) == vocab.max_relative_tf(
                token
            )
