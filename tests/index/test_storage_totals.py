"""Round-trip of the precomputed Eq. 8 normalizers (storage v2)."""

import pytest

from repro.index import storage, storage_binary
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def index():
    return build_corpus_index(XMLDocument(paper_example_tree()))


class TestTextFormat:
    def test_totals_round_trip(self, index):
        loaded = storage.loads(storage.dumps(index))
        assert loaded.path_token_totals() == index.path_token_totals()
        assert loaded.max_path_depth() == index.max_path_depth()

    def test_loaded_totals_are_precomputed(self, index):
        loaded = storage.loads(storage.dumps(index))
        # The map arrives from the file, not a post-load derivation.
        assert loaded.path_token_totals_map is not None
        assert loaded.path_token_totals() is loaded.path_token_totals_map

    def test_version_1_files_still_load(self, index):
        text = storage.dumps(index)
        lines = text.splitlines()
        assert lines[0] == f"{storage.MAGIC} {storage.VERSION}"
        # Strip the TOTALS section and downgrade the header.
        start = next(
            i for i, line in enumerate(lines) if line.startswith("TOTALS")
        )
        count = int(lines[start].split()[1])
        legacy = (
            [f"{storage.MAGIC} 1"]
            + lines[1:start]
            + lines[start + 1 + count:]
        )
        loaded = storage.loads("\n".join(legacy) + "\n")
        # Totals are derived on the fly and match the precomputed ones.
        assert loaded.path_token_totals() == index.path_token_totals()
        assert loaded.max_path_depth() == index.max_path_depth()


class TestBinaryFormat:
    def test_totals_round_trip(self, index):
        loaded = storage_binary.loads_binary(
            storage_binary.dumps_binary(index)
        )
        assert loaded.path_token_totals() == index.path_token_totals()
        assert loaded.max_path_depth() == index.max_path_depth()

    def test_formats_agree(self, index):
        from_text = storage.loads(storage.dumps(index))
        from_binary = storage_binary.loads_binary(
            storage_binary.dumps_binary(index)
        )
        assert (
            from_text.path_token_totals()
            == from_binary.path_token_totals()
        )
        assert (
            from_text.max_path_depth() == from_binary.max_path_depth()
        )
