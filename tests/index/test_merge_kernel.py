"""Tests for the batch merge kernel (``repro.index.merge_kernel``).

Three layers:

* the galloping search primitive (must agree with ``bisect_left`` on
  every sorted input);
* the generation-keyed :class:`IntersectionCache` LRU;
* the kernel merge loop end to end — byte-identical output against the
  classic packed loop and the tuple reference engine, honest counters
  across plan replays, and the in-loop γ-pruning fast path.
"""

from bisect import bisect_left

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.index.corpus import build_corpus_index
from repro.index.merge_kernel import (
    GroupRun,
    IntersectionCache,
    MergePlan,
    gallop_left,
)
from repro.xmltree.builder import build_tree, paper_example_tree
from repro.xmltree.dewey_packed import DeweyPacker
from repro.xmltree.document import XMLDocument


# ----------------------------------------------------------------------
# gallop_left
# ----------------------------------------------------------------------


class TestGallopLeft:
    @given(
        st.lists(st.integers(min_value=0, max_value=100), max_size=50),
        st.integers(min_value=-5, max_value=105),
    )
    def test_agrees_with_bisect_left(self, values, target):
        keys = sorted(values)
        assert gallop_left(keys, target, 0, len(keys)) == bisect_left(
            keys, target
        )

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=3,
            max_size=50,
        ),
        st.integers(min_value=-5, max_value=105),
        st.data(),
    )
    def test_agrees_on_subranges(self, values, target, data):
        keys = sorted(values)
        lo = data.draw(st.integers(0, len(keys)))
        hi = data.draw(st.integers(lo, len(keys)))
        assert gallop_left(keys, target, lo, hi) == bisect_left(
            keys, target, lo, hi
        )

    def test_empty_range_returns_lo(self):
        assert gallop_left([1, 2, 3], 2, 2, 2) == 2
        assert gallop_left([], 7, 0, 0) == 0

    def test_target_at_cursor_is_free(self):
        # The common Algorithm 1 case: no probe loop at all.
        assert gallop_left([5, 6, 7], 5, 0, 3) == 0
        assert gallop_left([5, 6, 7], 4, 0, 3) == 0

    def test_target_beyond_all_keys(self):
        assert gallop_left([1, 2, 3], 99, 0, 3) == 3

    def test_duplicates_find_leftmost(self):
        keys = [1, 3, 3, 3, 9]
        assert gallop_left(keys, 3, 0, 5) == 1


# ----------------------------------------------------------------------
# IntersectionCache
# ----------------------------------------------------------------------


def _plan() -> MergePlan:
    run = GroupRun(1, (1,), (1,), (0,), ({"a": [(1, 0, 1, "a")]},))
    return MergePlan([run], (1,), (0,), (0,))


class TestIntersectionCache:
    def test_hit_miss_counters(self):
        cache = IntersectionCache(capacity=2)
        assert cache.get("k") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("k", _plan())
        assert cache.get("k") is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = IntersectionCache(capacity=2)
        cache.put("a", _plan())
        cache.put("b", _plan())
        cache.get("a")  # refresh "a": "b" is now least recent
        cache.put("c", _plan())
        assert cache.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_resize_trims_lru_first(self):
        cache = IntersectionCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.put(key, _plan())
        cache.resize(1)
        assert len(cache) == 1
        assert cache.evictions == 2
        assert cache.get("c") is not None

    def test_disabled_cache_stores_nothing(self):
        cache = IntersectionCache(capacity=None)
        assert not cache.enabled
        cache.put("k", _plan())
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_clear(self):
        cache = IntersectionCache(capacity=2)
        cache.put("a", _plan())
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_approx_bytes_counts_entries(self):
        cache = IntersectionCache(capacity=2)
        assert cache.approx_bytes() == 0
        cache.put("a", _plan())
        assert cache.approx_bytes() > 0


# ----------------------------------------------------------------------
# DeweyPacker.group_bounds
# ----------------------------------------------------------------------


class TestGroupBounds:
    def test_bounds_bracket_exactly_the_subtree(self):
        packer = DeweyPacker(max_depth=4, component_bits=3)
        inside = [
            (1, 2), (1, 2, 1), (1, 2, 7), (1, 2, 7, 7),
        ]
        outside = [(1,), (1, 1, 7, 7), (1, 3), (2, 1)]
        lower, upper = packer.group_bounds(packer.pack((1, 2, 5)), 2)
        assert lower == packer.pack((1, 2))
        for code in inside:
            assert lower <= packer.pack(code) < upper, code
        for code in outside:
            packed = packer.pack(code)
            assert packed < lower or packed >= upper, code


# ----------------------------------------------------------------------
# Kernel merge loop: equivalence, replays, edge shapes
# ----------------------------------------------------------------------


def suggester(corpus, **overrides) -> XCleanSuggester:
    return XCleanSuggester(corpus, config=XCleanConfig(**overrides))


def output_of(sugg, query, k=10):
    return [
        (s.tokens, s.score, s.result_type)
        for s in sugg.suggest(query, k)
    ]


def assert_kernel_equivalent(corpus, queries, **overrides):
    """Kernel == classic (strict), == tuple (1e-9), same counters."""
    kernel = suggester(corpus, **overrides)
    classic = suggester(corpus, merge_kernel=False, **overrides)
    reference = suggester(corpus, engine="tuple", **overrides)
    for query in queries:
        got = output_of(kernel, query)
        want = output_of(classic, query)
        assert got == want, query
        ref = output_of(reference, query)
        assert [g[0] for g in got] == [r[0] for r in ref], query
        for g, r in zip(got, ref):
            assert g[1] == pytest.approx(r[1], rel=1e-9), query
        ks, cs = kernel.last_stats, classic.last_stats
        assert ks.postings_read == cs.postings_read, query
        assert ks.postings_skipped == cs.postings_skipped, query
        assert ks.groups_processed == cs.groups_processed, query
        assert (
            ks.postings_read == reference.last_stats.postings_read
        ), query


@pytest.fixture()
def paper_corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


class TestKernelEquivalence:
    QUERIES = ["trie icde", "tree", "tria icda", "trees icde"]

    def test_matches_classic_and_tuple(self, paper_corpus):
        assert_kernel_equivalent(
            paper_corpus, self.QUERIES, max_errors=1
        )

    def test_matches_with_pruning_disabled(self, paper_corpus):
        assert_kernel_equivalent(
            paper_corpus,
            self.QUERIES,
            max_errors=1,
            kernel_pruning=False,
        )

    def test_matches_without_gamma(self, paper_corpus):
        assert_kernel_equivalent(
            paper_corpus, self.QUERIES, max_errors=1, gamma=None
        )

    def test_matches_under_length_prior(self, paper_corpus):
        # Pruning self-disables under the length prior; output must
        # still match the classic loop exactly.
        assert_kernel_equivalent(
            paper_corpus, self.QUERIES, max_errors=1, prior="length"
        )


class TestPlanReplay:
    def test_warm_replay_is_byte_identical(self, paper_corpus):
        sugg = suggester(paper_corpus, max_errors=1)
        for query in TestKernelEquivalence.QUERIES:
            cold = output_of(sugg, query)
            cold_stats = sugg.last_stats
            cold_reads = cold_stats.postings_read
            cold_skips = cold_stats.postings_skipped
            cold_groups = cold_stats.groups_processed
            assert cold_stats.intersection_cache_hits == 0
            warm = output_of(sugg, query)
            warm_stats = sugg.last_stats
            assert warm == cold, query
            assert warm_stats.intersection_cache_hits >= 1
            assert warm_stats.postings_read == cold_reads, query
            assert warm_stats.postings_skipped == cold_skips, query
            assert warm_stats.groups_processed == cold_groups, query

    def test_generation_bump_invalidates_plans(self, paper_corpus):
        sugg = suggester(paper_corpus, max_errors=1)
        query = "trie icde"
        cold = output_of(sugg, query)
        output_of(sugg, query)
        assert sugg.last_stats.intersection_cache_hits >= 1
        paper_corpus.bump_generation()
        assert len(paper_corpus.intersection_cache) == 0
        rebuilt = output_of(sugg, query)
        assert sugg.last_stats.intersection_cache_hits == 0
        assert rebuilt == cold

    def test_cache_disabled_still_correct(self, paper_corpus):
        enabled = suggester(paper_corpus, max_errors=1)
        cold = output_of(enabled, "trie icde")
        paper_corpus.configure_query_caches(
            intersection_cache_size=None
        )
        disabled = suggester(
            paper_corpus, max_errors=1, intersection_cache_size=None
        )
        for _ in range(2):
            assert output_of(disabled, "trie icde") == cold
            assert disabled.last_stats.intersection_cache_hits == 0
            assert disabled.last_stats.intersection_cache_misses == 0
        assert len(paper_corpus.intersection_cache) == 0


def corpus_of(spec):
    return build_corpus_index(XMLDocument(build_tree(spec)))


class TestEdgeShapes:
    def test_keyword_with_no_postings(self):
        # One keyword's variant set resolves to an empty merged list:
        # the kernel must exhaust immediately with empty output.
        corpus = corpus_of(
            ("lib", [("item", [("t", "alpha")])])
        )
        assert_kernel_equivalent(
            corpus, ["alpha zzzzqq"], max_errors=0
        )
        sugg = suggester(corpus, max_errors=0)
        assert sugg.suggest("alpha zzzzqq", 5) == []

    def test_single_posting_lists(self):
        corpus = corpus_of(
            (
                "lib",
                [
                    ("item", [("t", "alpha"), ("t", "beta")]),
                    ("item", [("t", "gamma")]),
                ],
            )
        )
        assert_kernel_equivalent(
            corpus, ["alpha beta", "alpha gamma", "gamma"],
            max_errors=1,
        )

    def test_all_postings_in_one_subtree(self):
        corpus = corpus_of(
            (
                "lib",
                [
                    (
                        "item",
                        [("t", w) for w in (
                            "alpha", "beta", "alpha", "beta", "alpha"
                        )],
                    )
                ],
            )
        )
        assert_kernel_equivalent(
            corpus, ["alpha beta", "alpha", "beta beta"], max_errors=1
        )

    def test_max_depth_keys_at_component_boundary(self):
        # A chain down to the document's max depth with sibling fans
        # wide enough to exercise every component bit of the packer.
        def item(word):
            return ("w", [("x", [("y", [("t", word)])])])

        corpus = corpus_of(
            (
                "lib",
                [
                    ("shelf", [item("alpha")] * 7 + [item("beta")]),
                    ("shelf", [item("beta"), item("alpha")]),
                ],
            )
        )
        view = corpus.packed_view()
        packer = view.packer
        # The fixture must actually place postings at the packer's max
        # depth, or the boundary is not exercised.
        depth_mask = (1 << packer.depth_bits) - 1
        assert any(
            (key & depth_mask) == packer.max_depth
            for key in view.get("alpha").keys
        )
        assert_kernel_equivalent(
            corpus, ["alpha beta", "alpha", "beta alpha"], max_errors=1
        )

    def test_duplicate_keys_across_variants(self):
        # "bool" and "book" under the same leaf: the merged column
        # carries duplicate packed keys from different variant lists.
        corpus = corpus_of(
            (
                "lib",
                [
                    ("item", [("t", "book bool")]),
                    ("item", [("t", "book")]),
                ],
            )
        )
        assert_kernel_equivalent(corpus, ["book", "bool"], max_errors=1)


# ----------------------------------------------------------------------
# In-loop γ-pruning
# ----------------------------------------------------------------------


def pruning_corpus():
    """Corpus where a γ=1 pool saturates early and far variants of the
    query appear only in later document-order groups — the exact shape
    the in-loop prune is built for."""

    def shelf(*words):
        return ("shelf", [("item", [("t", w)]) for w in words])

    return corpus_of(
        (
            "lib",
            [
                shelf("book", "book", "book"),
                shelf("book", "book"),
                shelf("book"),
                shelf("boot"),
                shelf("bool"),
            ],
        )
    )


class TestKernelPruning:
    def test_prunes_without_changing_output(self):
        corpus = pruning_corpus()
        pruned = suggester(corpus, max_errors=1, gamma=1)
        plain = suggester(
            corpus, max_errors=1, gamma=1, kernel_pruning=False
        )
        classic = suggester(
            corpus, max_errors=1, gamma=1, merge_kernel=False
        )
        got = output_of(pruned, "book")
        assert got == output_of(plain, "book")
        assert got == output_of(classic, "book")
        assert pruned.last_stats.kernel_pruned > 0
        assert plain.last_stats.kernel_pruned == 0
        assert classic.last_stats.kernel_pruned == 0

    def test_pruned_candidates_still_counted_as_evaluated(self):
        corpus = pruning_corpus()
        pruned = suggester(corpus, max_errors=1, gamma=1)
        plain = suggester(
            corpus, max_errors=1, gamma=1, kernel_pruning=False
        )
        output_of(pruned, "book")
        output_of(plain, "book")
        assert (
            pruned.last_stats.candidates_evaluated
            == plain.last_stats.candidates_evaluated
        )

    def test_prune_disabled_under_length_prior(self):
        corpus = pruning_corpus()
        sugg = suggester(
            corpus, max_errors=1, gamma=1, prior="length"
        )
        classic = suggester(
            corpus,
            max_errors=1,
            gamma=1,
            prior="length",
            merge_kernel=False,
        )
        assert output_of(sugg, "book") == output_of(classic, "book")
        assert sugg.last_stats.kernel_pruned == 0

    def test_prune_replays_identically(self):
        corpus = pruning_corpus()
        sugg = suggester(corpus, max_errors=1, gamma=1)
        cold = output_of(sugg, "book")
        cold_pruned = sugg.last_stats.kernel_pruned
        warm = output_of(sugg, "book")
        assert warm == cold
        assert sugg.last_stats.intersection_cache_hits >= 1
        assert sugg.last_stats.kernel_pruned == cold_pruned

    def test_explain_reports_kernel_prunes(self):
        corpus = pruning_corpus()
        sugg = suggester(corpus, max_errors=1, gamma=1)
        explanation = sugg.suggest_explained("book", 5)
        assert explanation.stats["kernel_pruned"] > 0
        assert explanation.kernel_prunes
        note = explanation.kernel_prunes[0]
        assert note.upper_bound < note.floor
        assert "pruned" in explanation.render()


# ----------------------------------------------------------------------
# Corpus-level cache bounds
# ----------------------------------------------------------------------


class TestMergedCacheBounds:
    def test_lru_bound_evicts_and_counts(self, paper_corpus):
        paper_corpus.configure_query_caches(merged_cache_size=1)
        paper_corpus.merged_list_packed(("trie",))
        paper_corpus.merged_list_packed(("tree",))
        assert paper_corpus.merged_cache_evictions >= 1
        # The survivor is the most recent entry.
        misses = paper_corpus.merged_cache_misses
        paper_corpus.merged_list_packed(("tree",))
        assert paper_corpus.merged_cache_misses == misses

    def test_configure_is_idempotent(self, paper_corpus):
        paper_corpus.merged_list_packed(("trie",))
        hits = paper_corpus.merged_cache_hits
        paper_corpus.configure_query_caches()  # same (default) bounds
        paper_corpus.merged_list_packed(("trie",))
        assert paper_corpus.merged_cache_hits == hits + 1

    def test_config_knob_validation(self):
        with pytest.raises(Exception):
            XCleanConfig(merged_cache_size=0)
        with pytest.raises(Exception):
            XCleanConfig(intersection_cache_size=0)
        XCleanConfig(merged_cache_size=None)
        XCleanConfig(intersection_cache_size=None)

    def test_size_breakdown_reports_merge_plans(self, paper_corpus):
        sugg = suggester(paper_corpus, max_errors=1)
        output_of(sugg, "trie icde")
        from repro.index.corpus import approximate_index_bytes

        breakdown = approximate_index_bytes(paper_corpus)
        assert breakdown["merge_plans"] > 0
