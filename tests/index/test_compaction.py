"""Crash-safe lifecycle of LiveIndexManager (index/compaction.py).

The acceptance bar: crash the interleaved update workload at every
injected fault site, restart from disk alone, and the recovered index
must serve byte-identical top-k to a from-scratch rebuild of the same
logical corpus — every acknowledged update present, no torn state.
"""

import dataclasses
import json
import os

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.exceptions import UpdateError
from repro.index import atomic as atomic_module
from repro.index.compaction import LiveIndexManager
from repro.index.corpus import build_corpus_index
from repro.index.delta import (
    document_from_json,
    document_to_json,
    node_to_json,
)
from repro.index.sharding import (
    MANIFEST_NAME,
    build_sharded_snapshot,
    load_manifest,
)
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.wal import WalRecord
from repro.obs import faults
from repro.xmltree.document import XMLDocument
from repro.xmltree.node import XMLNode

QUERIES = ("speling sugestion", "databse", "zanziber", "xml serach")

ENGINES = [("packed", True), ("packed", False), ("tuple", False)]


def el(label, *children, text=""):
    node = XMLNode(label, text=text)
    for child in children:
        node.add_child(child)
    return node


def book(title, author):
    return el(
        "book", el("title", text=title), el("author", text=author)
    )


def base_document():
    root = el(
        "bib",
        book("database systems", "codd"),
        book("xml keyword search", "lu"),
        book("valid spelling suggestion", "chen"),
    )
    return XMLDocument(root, name="compaction-test")


OPS = [
    WalRecord(
        op="add", dewey=(1,),
        subtree=node_to_json(book("zanzibar consistency", "pat")),
    ),
    WalRecord(op="delete", dewey=(1, 1)),
    WalRecord(
        op="update", dewey=(1, 2, 1),
        subtree=node_to_json(el("title", text="entity tree search")),
    ),
]


@pytest.fixture
def snapshot(tmp_path):
    document = base_document()
    path = str(tmp_path / "live.xcs3")
    build_snapshot(build_corpus_index(document), path)
    return path, document


def rebuild_reference(manager):
    """From-scratch index over the manager's logical document."""
    copy = document_from_json(document_to_json(manager.document))
    return build_corpus_index(copy)


def topk(corpus, query, engine="packed", kernel=True, k=5):
    config = XCleanConfig(engine=engine, merge_kernel=kernel)
    suggester = XCleanSuggester(corpus, config=config)
    return [
        dataclasses.astuple(s) for s in suggester.suggest(query, k)
    ]


def assert_serves_like_rebuild(manager):
    reference = rebuild_reference(manager)
    for engine, kernel in ENGINES:
        for query in QUERIES:
            assert topk(manager.corpus, query, engine, kernel) == (
                topk(reference, query, engine, kernel)
            ), (engine, kernel, query)


class TestOpenAndRecovery:
    def test_first_open_requires_document(self, snapshot):
        path, _ = snapshot
        with pytest.raises(UpdateError):
            LiveIndexManager(path)

    def test_reopen_needs_only_disk_state(self, snapshot):
        path, document = snapshot
        with LiveIndexManager(path, document=document):
            pass
        with LiveIndexManager(path) as manager:
            assert manager.generation == 0
            assert manager.recovered_records == 0

    def test_wal_replay_restores_acknowledged_updates(self, snapshot):
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS)
            expected = document_to_json(manager.document)
        # "Crash" (no compaction): reopen from disk alone.
        with LiveIndexManager(path) as recovered:
            assert recovered.recovered_records == len(OPS)
            assert document_to_json(recovered.document) == expected
            assert_serves_like_rebuild(recovered)

    def test_foreign_sidecar_rejected(self, snapshot, tmp_path):
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS)
            manager.compact()  # generation 1
        # Regress the sidecar stamp: it no longer matches this index.
        with open(path + ".live.json", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["generation"] = 0
        with open(path + ".live.json", "w", encoding="utf-8") as out:
            json.dump(payload, out)
        from repro.exceptions import StorageError

        with pytest.raises(StorageError):
            LiveIndexManager(path)


class TestPayloadValidation:
    """No record may be fsync-acknowledged unless replay can apply it.

    A WAL-acked record that later fails ``apply_record`` would poison
    every subsequent open (replay re-applies it and the open crashes),
    so validation must fully parse the payload *before* the append.
    """

    POISON_CHILD = {"label": "book", "children": [{"text": "no label"}]}

    @pytest.mark.parametrize("op,dewey", [("add", (1,)), ("update", (1, 1))])
    def test_malformed_subtree_rejected_before_ack(
        self, snapshot, op, dewey
    ):
        path, document = snapshot
        poison = WalRecord(op=op, dewey=dewey, subtree=self.POISON_CHILD)
        with LiveIndexManager(path, document=document) as manager:
            with pytest.raises(UpdateError):
                manager.apply([poison])
            assert manager.acked_records == 0
            assert manager.applied_records == 0
        # Nothing hit the log: recovery is clean, not bricked.
        with LiveIndexManager(path) as reopened:
            assert reopened.recovered_records == 0
            assert_serves_like_rebuild(reopened)

    def test_compact_refuses_to_discard_acked_but_unfolded(
        self, snapshot, monkeypatch
    ):
        """An acked record whose fold failed lives only in the WAL;
        compacting would reset the log and silently discard it."""
        import repro.index.compaction as compaction_module

        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:

            def dying_apply(doc, record):
                raise UpdateError("injected fold failure")

            monkeypatch.setattr(
                compaction_module, "apply_record", dying_apply
            )
            with pytest.raises(UpdateError):
                manager.apply(OPS[:1])
            monkeypatch.undo()
            assert manager.acked_records == 1
            assert manager.applied_records == 0
            with pytest.raises(UpdateError, match="refusing to compact"):
                manager.compact()
        # The acknowledged record survived in the log: replay folds it.
        with LiveIndexManager(path) as recovered:
            assert recovered.recovered_records == 1
            assert recovered.document.node_at((1, 4)) is not None
            assert_serves_like_rebuild(recovered)


class TestCompaction:
    def test_generation_stamped_everywhere(self, snapshot):
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS)
            assert manager.compact() == 1
            assert manager.compact() == 2  # monotonic, even when clean
        reloaded = load_snapshot(path)
        try:
            assert reloaded.data_generation == 2
        finally:
            reloaded.close()
        with LiveIndexManager(path) as manager:
            assert manager.generation == 2
            assert_serves_like_rebuild(manager)

    def test_compacted_equals_rebuild(self, snapshot):
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS)
            manager.compact()
            assert not manager.delta.dirty
            assert_serves_like_rebuild(manager)

    def test_updates_after_compaction(self, snapshot):
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS[:1])
            manager.compact()
            manager.apply(OPS[1:])
            assert_serves_like_rebuild(manager)


class TestCrashWindows:
    """Every fault site, crashed and restarted (the acceptance bar)."""

    def apply_then_crash(self, path, document, plan, seed=0):
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS[:1])
            with faults.injected(plan, seed=seed):
                with pytest.raises(Exception):
                    manager.apply(OPS[1:])
                    manager.compact()

    @pytest.mark.parametrize("plan", [
        "wal.append:raise",
        "delta.apply:raise",
        "compact.swap:raise",      # crash entering the compaction
        "compact.swap:raise@1",    # crash after base swap, pre WAL reset
    ])
    def test_crash_and_restart_matches_rebuild(self, snapshot, plan):
        path, document = snapshot
        self.apply_then_crash(path, document, plan)
        with LiveIndexManager(path) as recovered:
            # The first record was acknowledged before the crash: it
            # must have survived.
            assert recovered.document.node_at((1, 4)) is not None
            assert_serves_like_rebuild(recovered)

    def test_corrupt_wal_tail_recovers_clean_prefix(self, snapshot):
        """Media corruption (not a crash): the damaged suffix is shed
        and the surviving prefix still serves exactly like a rebuild."""
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            with faults.injected("wal.append:corrupt", seed=7):
                try:
                    manager.apply(OPS)
                except Exception:
                    pass
        with LiveIndexManager(path) as recovered:
            assert_serves_like_rebuild(recovered)

    @staticmethod
    def fsync_dying_after(allowed):
        """Let ``allowed`` fsyncs through, then fail every later one.

        Inside ``compact`` the first file-level fsync belongs to the
        live-source sidecar; letting it through and killing the next
        lands the crash inside the snapshot build — recovery window 1.
        """
        real_fsync = os.fsync
        calls = {"n": 0}

        def fsync(fd):
            calls["n"] += 1
            if calls["n"] > allowed:
                raise OSError("disk gone (injected)")
            real_fsync(fd)

        return fsync

    def test_crash_mid_snapshot_build(self, snapshot, monkeypatch):
        """Window 1: live source written ahead, base build dies."""
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS)
            monkeypatch.setattr(
                atomic_module.os, "fsync", self.fsync_dying_after(1)
            )
            with pytest.raises(OSError):
                manager.compact()
            monkeypatch.undo()
        # Old generation still loads (atomic writer never tears it).
        stale = load_snapshot(path)
        assert stale.data_generation == 0
        stale.close()
        # Recovery finishes the interrupted compaction.
        with LiveIndexManager(path) as recovered:
            assert recovered.generation == 1
            assert_serves_like_rebuild(recovered)

    def test_crash_between_swap_and_wal_reset(self, snapshot):
        """Window 2: base at N+1, WAL still stamped N."""
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS)
            with faults.injected("compact.swap:raise@1"):
                with pytest.raises(Exception):
                    manager.compact()
        swapped = load_snapshot(path)
        assert swapped.data_generation == 1
        swapped.close()
        with LiveIndexManager(path) as recovered:
            # Stale WAL records were already folded in; not replayed.
            assert recovered.generation == 1
            assert recovered.recovered_records == 0
            assert_serves_like_rebuild(recovered)

    def test_double_crash_then_recovery(self, snapshot, monkeypatch):
        path, document = snapshot
        with LiveIndexManager(path, document=document) as manager:
            manager.apply(OPS[:2])
            monkeypatch.setattr(
                atomic_module.os, "fsync", self.fsync_dying_after(1)
            )
            with pytest.raises(OSError):
                manager.compact()
            monkeypatch.undo()
        # Second crash: die again entering the recovery compaction.
        with faults.injected("compact.swap:raise"):
            with pytest.raises(Exception):
                LiveIndexManager(path)
        with LiveIndexManager(path) as recovered:
            assert recovered.generation == 1
            assert_serves_like_rebuild(recovered)


class TestSharded:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_apply_compact_matches_rebuild(self, tmp_path, shards):
        from repro.core.shards import ShardedSuggestionService

        document = base_document()
        directory = str(tmp_path / f"shards{shards}")
        build_sharded_snapshot(
            build_corpus_index(document), directory, shards=shards
        )
        with LiveIndexManager(directory, document=document) as live:
            live.apply(OPS)
            assert live.compact() == 1
        manifest = load_manifest(
            os.path.join(directory, MANIFEST_NAME)
        )
        assert manifest.generation == 1
        reference = build_corpus_index(
            document_from_json(
                document_to_json(
                    LiveIndexManager(directory).document
                )
            )
        )
        with ShardedSuggestionService(manifest) as service:
            for query in QUERIES:
                mine = [
                    dataclasses.astuple(s)
                    for s in service.suggest(query, k=5)
                ]
                assert mine == topk(reference, query), query

    def test_sharded_crash_between_fold_and_wal_reset(self, tmp_path):
        document = base_document()
        directory = str(tmp_path / "crash-shards")
        build_sharded_snapshot(
            build_corpus_index(document), directory, shards=2
        )
        with LiveIndexManager(directory, document=document) as live:
            live.apply(OPS)
            with faults.injected("compact.swap:raise@1"):
                with pytest.raises(Exception):
                    live.compact()
        with LiveIndexManager(directory) as recovered:
            assert recovered.generation == 1
            assert recovered.recovered_records == 0
            reference = rebuild_reference(recovered)
            manifest = recovered.base
            from repro.core.shards import ShardedSuggestionService

            with ShardedSuggestionService(manifest) as service:
                for query in QUERIES:
                    mine = [
                        dataclasses.astuple(s)
                        for s in service.suggest(query, k=5)
                    ]
                    assert mine == topk(reference, query), query
