"""Crash safety of the on-disk index writers (index/atomic.py).

A writer killed mid-write must never leave a loadable-but-corrupt (or
torn) file at the destination: either the complete old file survives
or the complete new one appears.
"""

import os

import pytest

from repro.index import atomic as atomic_module
from repro.index.atomic import TMP_SUFFIX, atomic_write
from repro.index.corpus import build_corpus_index
from repro.index.snapshot import build_snapshot, verify_snapshot
from repro.index.storage import load_index, save_index
from repro.index.storage_binary import load_index_binary, save_index_binary
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(
        XMLDocument(paper_example_tree(), name="paper-example")
    )


class TestAtomicWrite:
    def test_success_publishes_and_cleans_tmp(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(str(target), "wb") as handle:
            handle.write(b"payload")
        assert target.read_bytes() == b"payload"
        assert not os.path.exists(str(target) + TMP_SUFFIX)

    def test_text_mode_with_encoding(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(str(target), "w", encoding="utf-8") as handle:
            handle.write("héllo")
        assert target.read_text(encoding="utf-8") == "héllo"

    def test_exception_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old and complete")
        with pytest.raises(RuntimeError):
            with atomic_write(str(target), "wb") as handle:
                handle.write(b"half of the new")
                raise RuntimeError("killed mid-write")
        assert target.read_bytes() == b"old and complete"
        assert not os.path.exists(str(target) + TMP_SUFFIX)

    def test_exception_without_preexisting_file(self, tmp_path):
        target = tmp_path / "fresh.bin"
        with pytest.raises(RuntimeError):
            with atomic_write(str(target), "wb") as handle:
                handle.write(b"torn")
                raise RuntimeError("killed mid-write")
        assert not target.exists()
        assert not os.path.exists(str(target) + TMP_SUFFIX)

    def test_read_modes_rejected(self, tmp_path):
        target = str(tmp_path / "out.bin")
        for mode in ("rb", "r", "ab", "a", "r+b", "w+b"):
            with pytest.raises(ValueError):
                with atomic_write(target, mode):
                    pass


class TestWritersSurviveCrash:
    """Kill each index writer mid-write; the old file must still load."""

    @pytest.mark.parametrize(
        "save,load,name",
        [
            (save_index, load_index, "index.xci"),
            (save_index_binary, load_index_binary, "index.xcib"),
        ],
    )
    def test_old_index_survives_failed_rewrite(
        self, corpus, tmp_path, monkeypatch, save, load, name
    ):
        path = str(tmp_path / name)
        save(corpus, path)
        good = load(path)

        # The crash: fsync blows up after the new bytes were written
        # to the temp file but before the rename could happen.
        def dying_fsync(fd):
            raise OSError("disk gone (injected)")

        monkeypatch.setattr(atomic_module.os, "fsync", dying_fsync)
        with pytest.raises(OSError):
            save(corpus, path)
        monkeypatch.undo()

        assert not os.path.exists(path + TMP_SUFFIX)
        reloaded = load(path)
        assert reloaded.name == good.name
        assert sorted(reloaded.inverted.tokens()) == sorted(
            good.inverted.tokens()
        )

    def test_snapshot_build_crash_leaves_no_torn_file(
        self, corpus, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, path)
        verify_snapshot(path)
        original = open(path, "rb").read()

        def dying_fsync(fd):
            raise OSError("disk gone (injected)")

        monkeypatch.setattr(atomic_module.os, "fsync", dying_fsync)
        with pytest.raises(OSError):
            build_snapshot(corpus, path)
        monkeypatch.undo()

        assert not os.path.exists(path + TMP_SUFFIX)
        assert open(path, "rb").read() == original
        verify_snapshot(path)
