"""Round-trip and error tests for index persistence."""

import pytest

from repro.exceptions import StorageError
from repro.index import storage
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture
def corpus():
    return build_corpus_index(
        XMLDocument(paper_example_tree(), name="paper-example")
    )


class TestRoundTrip:
    def test_name_preserved(self, corpus):
        loaded = storage.loads(storage.dumps(corpus))
        assert loaded.name == "paper-example"

    def test_postings_identical(self, corpus):
        loaded = storage.loads(storage.dumps(corpus))
        for token in corpus.inverted.tokens():
            assert list(loaded.inverted.list_for(token)) == list(
                corpus.inverted.list_for(token)
            )

    def test_path_table_identical(self, corpus):
        loaded = storage.loads(storage.dumps(corpus))
        assert list(loaded.path_table) == list(corpus.path_table)

    def test_subtree_counts_identical(self, corpus):
        loaded = storage.loads(storage.dumps(corpus))
        assert loaded.subtree_token_counts == corpus.subtree_token_counts

    def test_path_node_counts_identical(self, corpus):
        loaded = storage.loads(storage.dumps(corpus))
        assert loaded.path_node_counts == corpus.path_node_counts

    def test_path_index_rebuilt(self, corpus):
        loaded = storage.loads(storage.dumps(corpus))
        for token in corpus.path_index.tokens():
            assert dict(loaded.path_index.counts_for(token)) == dict(
                corpus.path_index.counts_for(token)
            )

    def test_vocabulary_statistics(self, corpus):
        loaded = storage.loads(storage.dumps(corpus))
        vocab, loaded_vocab = corpus.vocabulary, loaded.vocabulary
        assert loaded_vocab.total_tokens == vocab.total_tokens
        for token in vocab:
            assert loaded_vocab.max_tfidf(token) == pytest.approx(
                vocab.max_tfidf(token)
            )

    def test_file_roundtrip(self, corpus, tmp_path):
        path = str(tmp_path / "index.xci")
        storage.save_index(corpus, path)
        loaded = storage.load_index(path)
        assert loaded.describe() == corpus.describe()


class TestErrors:
    def test_wrong_magic(self):
        with pytest.raises(StorageError):
            storage.loads("NOTANINDEX 1\n")

    def test_wrong_version(self):
        with pytest.raises(StorageError):
            storage.loads("XCLEANIDX 99\n")

    def test_truncated(self, corpus):
        text = storage.dumps(corpus)
        with pytest.raises(StorageError):
            storage.loads(text[: len(text) // 2])

    def test_missing_end(self, corpus):
        text = storage.dumps(corpus)
        with pytest.raises(StorageError):
            storage.loads(text.replace("END\n", "NOPE\n"))

    def test_empty_input(self):
        with pytest.raises(StorageError):
            storage.loads("")
