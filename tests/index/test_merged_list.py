"""Tests for the MergedList heap merge (Section V-C)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.index.inverted import InvertedList
from repro.index.merged_list import MergedList

deweys = st.lists(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=4
).map(tuple)


def lists_from(spec: dict[str, list]) -> list[InvertedList]:
    return [
        InvertedList(token, [(c, 0, 1) for c in sorted(set(codes))])
        for token, codes in spec.items()
    ]


class TestMerge:
    def test_interleaves_in_document_order(self):
        merged = MergedList(
            lists_from({"a": [(1,), (3,)], "b": [(2,), (4,)]})
        )
        order = [e[0] for e in merged.drain()]
        assert order == [(1,), (2,), (3,), (4,)]

    def test_entries_carry_tokens(self):
        merged = MergedList(lists_from({"a": [(1,)], "b": [(2,)]}))
        tokens = [e[3] for e in merged.drain()]
        assert tokens == ["a", "b"]

    def test_cur_pos_does_not_consume(self):
        merged = MergedList(lists_from({"a": [(1,)]}))
        assert merged.cur_pos()[0] == (1,)
        assert merged.cur_pos()[0] == (1,)
        assert merged.next()[0] == (1,)
        assert merged.cur_pos() is None

    def test_empty_merge(self):
        merged = MergedList([])
        assert not merged
        assert merged.cur_pos() is None
        assert merged.next() is None

    def test_duplicate_positions_across_lists(self):
        # Two variants occurring at the same leaf are both reported.
        merged = MergedList(lists_from({"a": [(1, 1)], "b": [(1, 1)]}))
        entries = merged.drain()
        assert len(entries) == 2
        assert {e[3] for e in entries} == {"a", "b"}

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.lists(deweys, max_size=10),
            max_size=3,
        )
    )
    def test_equals_sorted_concatenation(self, spec):
        merged = MergedList(lists_from(spec))
        drained = [(e[0], e[3]) for e in merged.drain()]
        expected = sorted(
            (code, token)
            for token, codes in spec.items()
            for code in set(codes)
        )
        assert sorted(drained) == expected
        assert [d[0] for d in drained] == sorted(d[0] for d in drained)


class TestSkipTo:
    def test_skip_discards_smaller(self):
        merged = MergedList(
            lists_from({"a": [(1, 1), (1, 3)], "b": [(1, 2), (1, 4)]})
        )
        head = merged.skip_to((1, 3))
        assert head[0] == (1, 3)
        remaining = [e[0] for e in merged.drain()]
        assert remaining == [(1, 3), (1, 4)]

    def test_skip_to_subtree_root(self):
        # Example 5: skip_to(1.2) lands on the first occurrence in the
        # subtree of 1.2.
        merged = MergedList(
            lists_from(
                {"tree": [(1, 1, 2), (1, 2, 2)], "trie": [(1, 2, 1)]}
            )
        )
        head = merged.skip_to((1, 2))
        assert head[0] == (1, 2, 1)
        assert head[3] == "trie"

    def test_skip_exhausts_list(self):
        merged = MergedList(lists_from({"trees": [(1, 1, 1)]}))
        assert merged.skip_to((1, 2)) is None
        assert not merged

    def test_skip_counters(self):
        merged = MergedList(
            lists_from({"a": [(1, 1), (1, 2), (2, 1)], "b": [(1, 3)]})
        )
        merged.skip_to((2,))
        assert merged.total_skips == 3
        assert merged.total_reads == 0

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b"]),
            st.lists(deweys, max_size=10),
            max_size=2,
        ),
        deweys,
    )
    def test_skip_equals_filtered_merge(self, spec, target):
        merged = MergedList(lists_from(spec))
        merged.skip_to(target)
        drained = sorted((e[0], e[3]) for e in merged.drain())
        expected = sorted(
            (code, token)
            for token, codes in spec.items()
            for code in set(codes)
            if code >= target
        )
        assert drained == expected


class TestHeadDewey:
    def test_matches_cur_pos(self):
        merged = MergedList(lists_from({"a": [(1, 2)], "b": [(1, 1)]}))
        assert merged.head_dewey() == merged.cur_pos()[0] == (1, 1)

    def test_none_when_exhausted(self):
        merged = MergedList([])
        assert merged.head_dewey() is None

    def test_does_not_consume(self):
        merged = MergedList(lists_from({"a": [(1, 1)]}))
        merged.head_dewey()
        merged.head_dewey()
        assert merged.next() is not None


class TestPopSubtree:
    def test_pops_only_group_members(self):
        merged = MergedList(
            lists_from(
                {"a": [(1, 1, 1), (1, 2, 1)], "b": [(1, 1, 2), (1, 3, 1)]}
            )
        )
        entries = merged.pop_subtree((1, 1))
        assert [(e[0], e[3]) for e in entries] == [
            ((1, 1, 1), "a"),
            ((1, 1, 2), "b"),
        ]
        # The rest stays queued, in order.
        assert merged.head_dewey() == (1, 2, 1)

    def test_group_equal_to_entry(self):
        merged = MergedList(lists_from({"a": [(1, 1)]}))
        entries = merged.pop_subtree((1, 1))
        assert [e[0] for e in entries] == [(1, 1)]

    def test_empty_when_head_outside(self):
        merged = MergedList(lists_from({"a": [(1, 2, 1)]}))
        assert merged.pop_subtree((1, 1)) == []
        assert merged.head_dewey() == (1, 2, 1)

    def test_counts_as_reads(self):
        merged = MergedList(lists_from({"a": [(1, 1, 1), (1, 1, 2)]}))
        merged.pop_subtree((1, 1))
        assert merged.total_reads == 2

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b"]),
            st.lists(deweys, max_size=10),
            max_size=2,
        ),
        deweys,
    )
    def test_equivalent_to_manual_loop(self, spec, group):
        fast = MergedList(lists_from(spec))
        slow = MergedList(lists_from(spec))
        popped = fast.pop_subtree(group)

        manual = []
        head = slow.cur_pos()
        while head is not None and head[0][: len(group)] == group:
            manual.append(slow.next())
            head = slow.cur_pos()
        assert popped == manual
        assert fast.head_dewey() == slow.head_dewey()
