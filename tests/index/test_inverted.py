"""Tests for inverted lists, cursors, and galloping skip_to."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.inverted import InvertedIndex, InvertedList, ListCursor

deweys = st.lists(
    st.integers(min_value=1, max_value=5), min_size=1, max_size=5
).map(tuple)


def make_list(codes) -> InvertedList:
    return InvertedList("tok", [(c, 0, 1) for c in codes])


class TestInvertedList:
    def test_preserves_order(self):
        lst = make_list([(1, 1), (1, 2), (2,)])
        assert [p[0] for p in lst] == [(1, 1), (1, 2), (2,)]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            make_list([(1, 2), (1, 1)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            make_list([(1, 1), (1, 1)])

    def test_len_and_getitem(self):
        lst = make_list([(1,), (2,)])
        assert len(lst) == 2
        assert lst[1][0] == (2,)

    def test_first_at_or_after_exact(self):
        lst = make_list([(1, 1), (1, 3), (1, 5)])
        assert lst.first_at_or_after((1, 3)) == 1

    def test_first_at_or_after_between(self):
        lst = make_list([(1, 1), (1, 3), (1, 5)])
        assert lst.first_at_or_after((1, 2)) == 1

    def test_first_at_or_after_past_end(self):
        lst = make_list([(1, 1)])
        assert lst.first_at_or_after((2,)) == 1

    def test_first_at_or_after_from_start_position(self):
        lst = make_list([(1, 1), (1, 3), (1, 5), (1, 7)])
        assert lst.first_at_or_after((1, 2), start=2) == 2

    def test_prefix_target_before_descendants(self):
        # skip_to(1.2) must land on the first node inside subtree 1.2.
        lst = make_list([(1, 1, 1), (1, 2, 1), (1, 3, 1)])
        assert lst.first_at_or_after((1, 2)) == 1

    @given(st.lists(deweys, min_size=0, max_size=30), deweys)
    def test_matches_linear_scan(self, codes, target):
        codes = sorted(set(codes))
        lst = make_list(codes)
        expected = next(
            (i for i, c in enumerate(codes) if c >= target), len(codes)
        )
        assert lst.first_at_or_after(target) == expected

    @given(st.lists(deweys, min_size=1, max_size=30), deweys, st.integers(0, 29))
    def test_start_position_respected(self, codes, target, start):
        codes = sorted(set(codes))
        start = min(start, len(codes))
        lst = make_list(codes)
        result = lst.first_at_or_after(target, start)
        assert result >= start
        expected = next(
            (i for i in range(start, len(codes)) if codes[i] >= target),
            len(codes),
        )
        assert result == expected


class TestListCursor:
    def test_advance_reads_in_order(self):
        cursor = ListCursor(make_list([(1,), (2,), (3,)]))
        seen = [cursor.advance()[0] for _ in range(3)]
        assert seen == [(1,), (2,), (3,)]
        assert cursor.advance() is None
        assert cursor.exhausted()

    def test_skip_counts(self):
        cursor = ListCursor(make_list([(1, 1), (1, 2), (1, 3), (2, 1)]))
        head = cursor.skip_to((2,))
        assert head[0] == (2, 1)
        assert cursor.skips == 3
        assert cursor.reads == 0

    def test_skip_to_current_is_noop(self):
        cursor = ListCursor(make_list([(1,), (2,)]))
        cursor.skip_to((1,))
        assert cursor.position == 0

    def test_current_does_not_consume(self):
        cursor = ListCursor(make_list([(1,)]))
        assert cursor.current()[0] == (1,)
        assert cursor.current()[0] == (1,)
        assert cursor.reads == 0


class TestInvertedIndex:
    def test_add_and_get(self):
        index = InvertedIndex()
        index.add_list(make_list([(1,)]))
        assert "tok" in index
        assert index.get("tok") is not None

    def test_get_missing(self):
        assert InvertedIndex().get("nope") is None

    def test_list_for_missing_is_empty(self):
        lst = InvertedIndex().list_for("nope")
        assert len(lst) == 0

    def test_total_postings(self):
        index = InvertedIndex()
        index.add_list(InvertedList("a", [((1,), 0, 1)]))
        index.add_list(InvertedList("b", [((1,), 0, 1), ((2,), 0, 1)]))
        assert index.total_postings() == 3
        assert len(index) == 2
