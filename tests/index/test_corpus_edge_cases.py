"""Edge cases for corpus indexing: empty/degenerate/mixed documents."""

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.index.corpus import build_corpus_index
from repro.xmltree.document import XMLDocument
from repro.xmltree.node import XMLNode


class TestDegenerateDocuments:
    def test_empty_document(self):
        corpus = build_corpus_index(XMLDocument(XMLNode("root")))
        assert len(corpus.vocabulary) == 0
        assert corpus.inverted.total_postings() == 0
        # The root path is still registered.
        assert corpus.entity_count(corpus.path_table.id_of(("root",))) == 1

    def test_stopwords_only(self):
        corpus = build_corpus_index(
            XMLDocument.from_string("<a><b>the of and to</b></a>")
        )
        assert len(corpus.vocabulary) == 0
        assert corpus.subtree_length((1,)) == 0

    def test_suggester_on_empty_corpus(self):
        corpus = build_corpus_index(XMLDocument(XMLNode("root")))
        suggester = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        assert suggester.suggest("anything") == []

    def test_single_token_document(self):
        corpus = build_corpus_index(
            XMLDocument.from_string("<a><b>database</b></a>")
        )
        assert corpus.vocabulary.total_tokens == 1
        assert corpus.subtree_length((1,)) == 1
        assert corpus.subtree_length((1, 1)) == 1


class TestAttributesAndMixedContent:
    def test_attribute_values_indexed(self):
        corpus = build_corpus_index(
            XMLDocument.from_string(
                '<dblp><article key="conference paper">x</article></dblp>'
            )
        )
        assert "conference" in corpus.vocabulary
        postings = list(corpus.inverted.list_for("conference"))
        path = corpus.path_table.string_of(postings[0][1])
        assert path == "/dblp/article/@key"

    def test_mixed_content_text_nodes_indexed(self):
        corpus = build_corpus_index(
            XMLDocument.from_string(
                "<a>leading words<b>middle text</b>trailing words</a>"
            )
        )
        assert "leading" in corpus.vocabulary
        assert "trailing" in corpus.vocabulary
        assert "middle" in corpus.vocabulary
        postings = list(corpus.inverted.list_for("leading"))
        assert corpus.path_table.string_of(postings[0][1]) == "/a/#text"

    def test_duplicate_token_same_leaf_tf(self):
        corpus = build_corpus_index(
            XMLDocument.from_string("<a><b>echo echo echo</b></a>")
        )
        postings = list(corpus.inverted.list_for("echo"))
        assert len(postings) == 1
        assert postings[0][2] == 3
        assert corpus.vocabulary.collection_frequency("echo") == 3


class TestCollections:
    def test_virtual_root_indexing(self):
        corpus = build_corpus_index(
            XMLDocument.from_strings(
                ["<doc><t>alpha</t></doc>", "<doc><t>beta</t></doc>"]
            )
        )
        table = corpus.path_table
        assert corpus.entity_count(
            table.id_of(("collection", "doc"))
        ) == 2
        assert corpus.subtree_length((1,)) == 2
        assert corpus.subtree_length((1, 1)) == 1

    def test_queries_across_documents_blocked_by_min_depth(self):
        # alpha and beta never co-occur below the virtual root.
        corpus = build_corpus_index(
            XMLDocument.from_strings(
                ["<doc><t>alpha</t></doc>", "<doc><t>beta</t></doc>"]
            )
        )
        suggester = XCleanSuggester(
            corpus,
            config=XCleanConfig(max_errors=1, gamma=None, min_depth=2),
        )
        assert suggester.suggest("alpha beta") == []


class TestUnicode:
    def test_unicode_tokens_indexed(self):
        corpus = build_corpus_index(
            XMLDocument.from_string(
                "<a><b>schütze naïve café</b></a>"
            )
        )
        assert "schütze" in corpus.vocabulary
        assert "naïve" in corpus.vocabulary

    def test_unicode_query(self):
        corpus = build_corpus_index(
            XMLDocument.from_string("<a><b>schütze retrieval</b></a>")
        )
        suggester = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        suggestions = suggester.suggest("schütze retrieval")
        assert suggestions
        assert suggestions[0].tokens == ("schütze", "retrieval")
