"""Tests for the varint/delta codec and binary index persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.index import storage
from repro.index.compression import (
    decode_postings,
    encode_postings,
    read_string,
    read_uvarint,
    write_string,
    write_uvarint,
)
from repro.index.corpus import build_corpus_index
from repro.index.storage_binary import (
    dumps_binary,
    load_index_binary,
    loads_binary,
    save_index_binary,
)
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_roundtrip(self, value):
        buffer = bytearray()
        write_uvarint(buffer, value)
        decoded, position = read_uvarint(bytes(buffer), 0)
        assert decoded == value
        assert position == len(buffer)

    def test_small_values_one_byte(self):
        buffer = bytearray()
        write_uvarint(buffer, 100)
        assert len(buffer) == 1

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            write_uvarint(bytearray(), -1)

    def test_truncated_raises(self):
        with pytest.raises(StorageError):
            read_uvarint(b"\x80", 0)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip_property(self, value):
        buffer = bytearray()
        write_uvarint(buffer, value)
        assert read_uvarint(bytes(buffer), 0)[0] == value


class TestStrings:
    @given(st.text(max_size=50))
    def test_roundtrip(self, text):
        buffer = bytearray()
        write_string(buffer, text)
        decoded, position = read_string(bytes(buffer), 0)
        assert decoded == text
        assert position == len(buffer)

    def test_truncated_raises(self):
        buffer = bytearray()
        write_string(buffer, "hello")
        with pytest.raises(StorageError):
            read_string(bytes(buffer)[:-2], 0)


deweys = st.lists(
    st.integers(min_value=1, max_value=9), min_size=1, max_size=6
).map(tuple)

postings_strategy = st.lists(
    st.tuples(
        deweys,
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=9),
    ),
    max_size=30,
).map(
    lambda rows: sorted(
        {r[0]: r for r in rows}.values(), key=lambda r: r[0]
    )
)


class TestPostingCodec:
    def test_empty_list(self):
        data = encode_postings([])
        assert decode_postings(data)[0] == []

    def test_shared_prefixes_compress(self):
        # Siblings share a 3-component prefix: suffix coding must beat
        # naive full-tuple coding.
        siblings = [((1, 2, 3, i), 0, 1) for i in range(1, 40)]
        spread = [((i, 2, 3, 1), 0, 1) for i in range(1, 40)]
        assert len(encode_postings(siblings)) < len(
            encode_postings(spread)
        )

    def test_corrupt_data_raises(self):
        good = encode_postings([((1, 2), 0, 1)])
        with pytest.raises(StorageError):
            decode_postings(good[:-1])

    @settings(max_examples=80)
    @given(postings_strategy)
    def test_roundtrip_property(self, postings):
        data = encode_postings(postings)
        decoded, position = decode_postings(data)
        assert decoded == postings
        assert position == len(data)


class TestBinaryIndex:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus_index(
            XMLDocument(paper_example_tree(), name="paper-example")
        )

    def test_roundtrip_equivalent_to_text_format(self, corpus):
        from_binary = loads_binary(dumps_binary(corpus))
        from_text = storage.loads(storage.dumps(corpus))
        assert from_binary.name == from_text.name
        assert (
            from_binary.path_node_counts == from_text.path_node_counts
        )
        assert (
            from_binary.subtree_token_counts
            == from_text.subtree_token_counts
        )
        for token in corpus.inverted.tokens():
            assert list(from_binary.inverted.list_for(token)) == list(
                from_text.inverted.list_for(token)
            )

    def test_smaller_than_text(self, corpus):
        assert len(dumps_binary(corpus)) < len(
            storage.dumps(corpus).encode()
        )

    def test_file_roundtrip(self, corpus, tmp_path):
        path = str(tmp_path / "index.xcib")
        save_index_binary(corpus, path)
        loaded = load_index_binary(path)
        assert loaded.describe() == corpus.describe()

    def test_wrong_magic(self):
        with pytest.raises(StorageError):
            loads_binary(b"NOPE" + b"\x00" * 10)

    def test_suggestions_identical_after_reload(self, corpus):
        from repro.core.cleaner import XCleanSuggester
        from repro.core.config import XCleanConfig

        config = XCleanConfig(max_errors=1, gamma=None)
        original = XCleanSuggester(corpus, config=config)
        reloaded = XCleanSuggester(
            loads_binary(dumps_binary(corpus)), config=config
        )
        a = original.suggest("tree icdt", 5)
        b = reloaded.suggest("tree icdt", 5)
        assert [(s.tokens, s.result_type) for s in a] == [
            (s.tokens, s.result_type) for s in b
        ]
        for left, right in zip(a, b):
            assert left.score == pytest.approx(right.score)


class TestChecksumIntegrity:
    @pytest.fixture(scope="class")
    def blob(self):
        corpus = build_corpus_index(
            XMLDocument(paper_example_tree(), name="crc")
        )
        return dumps_binary(corpus)

    def test_clean_blob_loads(self, blob):
        assert loads_binary(blob).name == "crc"

    def test_truncation_detected(self, blob):
        with pytest.raises(StorageError):
            loads_binary(blob[:-1])

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_any_single_byte_flip_detected(self, blob, data):
        position = data.draw(
            st.integers(min_value=4, max_value=len(blob) - 1)
        )
        flip = data.draw(st.integers(min_value=1, max_value=255))
        corrupted = bytearray(blob)
        corrupted[position] ^= flip
        with pytest.raises(StorageError):
            loads_binary(bytes(corrupted))
