"""The delta overlay (index/delta.py) against a from-scratch rebuild.

The load-bearing invariant of live updates: after any sequence of
subtree add/update/delete records, the overlay corpus must be
*indistinguishable* from an index built from scratch over the applied
logical document — same postings, same Eq. 6/8 statistics, and (the
acceptance bar) byte-identical top-k from both engines with the merge
kernel on and off.
"""

import dataclasses
import random

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.exceptions import UpdateError
from repro.index.corpus import build_corpus_index
from repro.index.delta import (
    DeltaOverlayCorpus,
    DeltaSegment,
    apply_record,
    document_from_json,
    document_to_json,
    node_to_json,
)
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.wal import WalRecord
from repro.obs import faults
from repro.xmltree.document import XMLDocument
from repro.xmltree.node import XMLNode

WORDS = (
    "xml keyword search spelling suggestion database query tree "
    "index valid clean icde entity ranking dewey"
).split()


def el(label, *children, text=""):
    node = XMLNode(label, text=text)
    for child in children:
        node.add_child(child)
    return node


def book(title: str, author: str) -> XMLNode:
    return el(
        "book",
        el("title", text=title),
        el("author", text=author),
    )


def base_document() -> XMLDocument:
    root = el(
        "bib",
        book("database systems", "codd"),
        book("xml keyword search", "lu"),
        book("valid spelling suggestion", "chen"),
        book("query ranking", "salton"),
    )
    return XMLDocument(root, name="overlay-test")


OPS = [
    WalRecord(
        op="add", dewey=(1,),
        subtree=node_to_json(book("dewey index clean", "knuth")),
    ),
    WalRecord(op="delete", dewey=(1, 1)),
    WalRecord(
        op="update", dewey=(1, 2, 1),
        subtree=node_to_json(el("title", text="entity tree search")),
    ),
    WalRecord(
        op="add", dewey=(1, 3),
        subtree=node_to_json(el("year", text="2011")),
    ),
    WalRecord(op="delete", dewey=(1, 5)),
    WalRecord(
        op="add", dewey=(1,),
        subtree=node_to_json(book("icde spelling", "lu")),
    ),
]

QUERIES = (
    "speling sugestion",
    "xml serach",
    "databse",
    "icde speling",
    "entitee tree",
    "dewei clean",
)


def applied_copy(document, records):
    """A deep copy of ``document`` with ``records`` applied."""
    copy = document_from_json(document_to_json(document))
    results = []
    for record in records:
        results.append(apply_record(copy, record))
    return copy, results


def overlay_over(base, document, records):
    copy, results = applied_copy(document, records)
    segment = DeltaSegment()
    for result in results:
        segment.apply(result, base.tokenizer, base.path_table)
    return DeltaOverlayCorpus(base, segment), copy


def topk(corpus, query, engine, kernel, k=5):
    config = XCleanConfig(engine=engine, merge_kernel=kernel)
    suggester = XCleanSuggester(corpus, config=config)
    return [
        dataclasses.astuple(s) for s in suggester.suggest(query, k)
    ]


ENGINES = [("packed", True), ("packed", False), ("tuple", False)]


class TestStatEquivalence:
    """Raw index surfaces: postings and every scored statistic."""

    def assert_equivalent(self, overlay, reference):
        vocabulary = overlay.vocabulary
        ref_vocab = reference.vocabulary
        assert set(vocabulary.tokens()) == set(ref_vocab.tokens())
        for token in sorted(ref_vocab.tokens()):
            mine = overlay.inverted.get(token)
            theirs = reference.inverted.get(token)
            assert (mine is None) == (theirs is None), token
            if mine is not None:
                assert mine.postings == theirs.postings, token
            assert vocabulary.collection_frequency(token) == (
                ref_vocab.collection_frequency(token)
            ), token
            assert vocabulary.element_document_frequency(token) == (
                ref_vocab.element_document_frequency(token)
            ), token
            assert dict(overlay.path_index.counts_for(token)) == dict(
                reference.path_index.counts_for(token)
            ), token
        assert vocabulary.total_tokens == ref_vocab.total_tokens
        assert vocabulary.element_doc_count == (
            ref_vocab.element_doc_count
        )
        assert dict(overlay.path_node_counts) == dict(
            reference.path_node_counts
        )
        assert dict(overlay.path_token_totals_map) == dict(
            reference.path_token_totals_map
        )
        assert dict(overlay.subtree_token_counts) == dict(
            reference.subtree_token_counts
        )
        assert overlay.max_path_depth() == reference.max_path_depth()
        packed = overlay.packed_view()
        for code, length in reference.subtree_token_counts.items():
            key = packed.packer.pack(code)
            assert packed.subtree_lengths.get(key, 0) == length, code

    def test_scripted_sequence(self):
        document = base_document()
        base = build_corpus_index(document)
        overlay, applied = overlay_over(base, document, OPS)
        self.assert_equivalent(overlay, build_corpus_index(applied))

    def test_incremental_refresh_stays_exact(self):
        document = base_document()
        base = build_corpus_index(document)
        copy = document_from_json(document_to_json(document))
        segment = DeltaSegment()
        overlay = DeltaOverlayCorpus(base, segment)
        for record in OPS:
            result = apply_record(copy, record)
            segment.apply(result, base.tokenizer, base.path_table)
            overlay.refresh()
            self.assert_equivalent(overlay, build_corpus_index(copy))

    def test_randomized_sequences(self):
        rng = random.Random(20110411)
        for _ in range(5):
            document = base_document()
            base = build_corpus_index(document)
            copy = document_from_json(document_to_json(document))
            segment = DeltaSegment()
            live = []  # deweys of live (non-placeholder) books
            next_child = len(copy.root.children)
            for _ in range(rng.randrange(3, 9)):
                choice = rng.random()
                if choice < 0.5 or not live:
                    title = " ".join(rng.sample(WORDS, 3))
                    record = WalRecord(
                        op="add", dewey=(1,),
                        subtree=node_to_json(
                            book(title, rng.choice(WORDS))
                        ),
                    )
                    next_child += 1
                    live.append((1, next_child))
                elif choice < 0.75:
                    target = live.pop(rng.randrange(len(live)))
                    record = WalRecord(op="delete", dewey=target)
                else:
                    target = live[rng.randrange(len(live))]
                    title = " ".join(rng.sample(WORDS, 2))
                    record = WalRecord(
                        op="update", dewey=target,
                        subtree=node_to_json(
                            book(title, rng.choice(WORDS))
                        ),
                    )
                result = apply_record(copy, record)
                segment.apply(
                    result, base.tokenizer, base.path_table
                )
            overlay = DeltaOverlayCorpus(base, segment)
            self.assert_equivalent(overlay, build_corpus_index(copy))


class TestSuggestionEquivalence:
    """The acceptance bar: byte-identical top-k, all engine modes."""

    @pytest.mark.parametrize("engine,kernel", ENGINES)
    def test_memory_base(self, engine, kernel):
        document = base_document()
        base = build_corpus_index(document)
        overlay, applied = overlay_over(base, document, OPS)
        reference = build_corpus_index(applied)
        for query in QUERIES:
            assert topk(overlay, query, engine, kernel) == (
                topk(reference, query, engine, kernel)
            ), query

    @pytest.mark.parametrize("engine,kernel", ENGINES)
    def test_snapshot_base(self, tmp_path, engine, kernel):
        document = base_document()
        index = build_corpus_index(document)
        path = str(tmp_path / "base.xcs3")
        build_snapshot(index, path)
        base = load_snapshot(path)
        try:
            overlay, applied = overlay_over(base, document, OPS)
            reference = build_corpus_index(applied)
            for query in QUERIES:
                assert topk(overlay, query, engine, kernel) == (
                    topk(reference, query, engine, kernel)
                ), query
        finally:
            base.close()


class TestOverlayVariantGenerator:
    """Incremental var_ε(q): O(|touched|) to build, exact output.

    Installing a fresh suggester after every update batch must not
    rebuild a deletion-neighborhood index over the whole merged
    vocabulary (that build runs under the serving tier's compute lock);
    the incremental generator wraps the base index and must return the
    *identical* sorted variant sets a from-scratch rebuild would.
    """

    PROBES = (
        "speling", "sugestion", "serach", "databse", "dewei",
        "knutt", "cod", "codd", "entitee", "indx", "quer",
    )

    def overlay_on_snapshot(self, tmp_path, records):
        document = base_document()
        path = str(tmp_path / "vg.xcs3")
        build_snapshot(build_corpus_index(document), path)
        base = load_snapshot(path)
        overlay, applied = overlay_over(base, document, records)
        return base, overlay, applied

    def test_matches_full_rebuild(self, tmp_path):
        from repro.fastss.generator import VariantGenerator
        from repro.index.delta import OverlayVariantGenerator

        base, overlay, applied = self.overlay_on_snapshot(
            tmp_path, OPS
        )
        try:
            generator = overlay.variant_generator(max_errors=2)
            assert isinstance(generator, OverlayVariantGenerator)
            reference = VariantGenerator(
                build_corpus_index(applied).vocabulary.tokens(),
                max_errors=2,
            )
            for keyword in self.PROBES:
                assert generator.variants(keyword) == (
                    reference.variants(keyword)
                ), keyword
                assert generator.variant_tokens(keyword) == (
                    reference.variant_tokens(keyword)
                ), keyword
        finally:
            base.close()

    def test_added_and_deleted_tokens(self, tmp_path):
        records = [
            WalRecord(
                op="add", dewey=(1,),
                subtree=node_to_json(book("zanzibar", "pat")),
            ),
            # Deletes book 1.1 — the only home of "codd".
            WalRecord(op="delete", dewey=(1, 1)),
        ]
        base, overlay, _ = self.overlay_on_snapshot(tmp_path, records)
        try:
            generator = overlay.variant_generator(max_errors=2)
            # Brand-new token: suggestible through the delta index.
            assert "zanzibar" in generator.variant_tokens("zanziber")
            # Fully deleted token: filtered out of base hits.
            assert "codd" not in generator.variant_tokens("codd")
            assert generator.distance_of("zanziber", "zanzibar") == 1
            assert generator.distance_of("codd", "codd") is None
        finally:
            base.close()

    def test_clean_overlay_returns_base_generator(self, tmp_path):
        from repro.index.delta import OverlayVariantGenerator

        base, overlay, _ = self.overlay_on_snapshot(tmp_path, [])
        try:
            generator = overlay.variant_generator(max_errors=2)
            assert not isinstance(generator, OverlayVariantGenerator)
        finally:
            base.close()

    def test_variant_memo_counts(self, tmp_path):
        base, overlay, _ = self.overlay_on_snapshot(tmp_path, OPS)
        try:
            generator = overlay.variant_generator(max_errors=2)
            first = generator.variants("speling")
            assert generator.variants("speling") is first
            assert generator.cache_hits == 1
            assert generator.cache_misses == 1
        finally:
            base.close()


class TestVisibilitySemantics:
    def test_new_tokens_are_suggestable(self):
        document = base_document()
        base = build_corpus_index(document)
        record = WalRecord(
            op="add", dewey=(1,),
            subtree=node_to_json(book("zanzibar consistency", "pat")),
        )
        overlay, _ = overlay_over(base, document, [record])
        answers = topk(overlay, "zanziber", "packed", True)
        assert answers, "brand-new token must be reachable"
        assert "zanzibar" in answers[0][0]

    def test_deleted_content_is_masked(self):
        document = base_document()
        base = build_corpus_index(document)
        # "codd" occurs only under book 1.1; delete it.
        record = WalRecord(op="delete", dewey=(1, 1))
        overlay, _ = overlay_over(base, document, [record])
        assert overlay.inverted.get("codd") is None
        assert not topk(overlay, "codd", "packed", True)

    def test_base_postings_untouched_pass_through(self):
        document = base_document()
        base = build_corpus_index(document)
        record = WalRecord(op="delete", dewey=(1, 1))
        overlay, _ = overlay_over(base, document, [record])
        # "salton" lives only under an untouched subtree: zero-copy.
        assert overlay.inverted.get("salton") is (
            base.inverted.get("salton")
        )

    def test_delete_keeps_sibling_deweys_stable(self):
        document = base_document()
        copy, results = applied_copy(
            document, [WalRecord(op="delete", dewey=(1, 2))]
        )
        # The placeholder keeps ordinal addressing intact: 1.3 still
        # resolves to the third book.
        node = copy.node_at((1, 3))
        assert node is not None
        assert node.children[0].text == "valid spelling suggestion"

    def test_update_of_root_rejected(self):
        document = base_document()
        copy = document_from_json(document_to_json(document))
        with pytest.raises(UpdateError):
            apply_record(
                copy, WalRecord(op="delete", dewey=(1,))
            )

    def test_missing_target_rejected(self):
        document = base_document()
        copy = document_from_json(document_to_json(document))
        with pytest.raises(UpdateError):
            apply_record(
                copy, WalRecord(op="delete", dewey=(1, 99))
            )


class TestFaultSite:
    def test_delta_apply_site_fires(self):
        document = base_document()
        base = build_corpus_index(document)
        copy, results = applied_copy(document, OPS[:1])
        segment = DeltaSegment()
        with faults.injected("delta.apply:raise"):
            with pytest.raises(Exception):
                segment.apply(
                    results[0], base.tokenizer, base.path_table
                )
        # The crash window is covered by WAL replay; the segment
        # itself must not have half-applied the record.
        assert not segment.dirty
