"""Edge-case coverage for MergedList / PackedMergedList skip_to and
pop_subtree: empty member lists, duplicate heads across variants, skip
targets beyond all postings, and groups deeper than every head."""

from repro.index.inverted import InvertedList, PackedInvertedList
from repro.index.merged_list import MergedList, PackedMergedList
from repro.xmltree.dewey_packed import DeweyPacker

#: Codes every packer in this file can encode.
UNIVERSE_PACKER = DeweyPacker(max_depth=5, component_bits=5)


def tuple_merged(spec: dict[str, list]) -> MergedList:
    return MergedList(
        InvertedList(token, [(c, 0, 1) for c in sorted(set(codes))])
        for token, codes in spec.items()
    )


def packed_merged(spec: dict[str, list]) -> PackedMergedList:
    return PackedMergedList(
        PackedInvertedList.from_inverted(
            InvertedList(token, [(c, 0, 1) for c in sorted(set(codes))]),
            UNIVERSE_PACKER,
        )
        for token, codes in spec.items()
    )


def both(spec):
    return [
        (tuple_merged(spec), lambda c: c, lambda e: e[0]),
        (
            packed_merged(spec),
            UNIVERSE_PACKER.pack,
            lambda e: UNIVERSE_PACKER.unpack(e[0]),
        ),
    ]


def pop_subtree(merged, group_code):
    """Engine-agnostic pop_subtree."""
    if isinstance(merged, PackedMergedList):
        return merged.pop_subtree(
            UNIVERSE_PACKER.pack(group_code),
            UNIVERSE_PACKER.shift_for(len(group_code)),
        )
    return merged.pop_subtree(group_code)


class TestEmptyMemberLists:
    def test_all_members_empty(self):
        for merged, pack, _unpack in both({"a": [], "b": []}):
            assert not merged
            assert merged.cur_pos() is None
            assert merged.next() is None
            assert merged.skip_to(pack((1,))) is None
            assert pop_subtree(merged, (1,)) == []

    def test_some_members_empty(self):
        spec = {"a": [], "b": [(1, 1), (2, 1)], "c": []}
        for merged, _pack, unpack in both(spec):
            assert [unpack(e) for e in merged.drain()] == [
                (1, 1),
                (2, 1),
            ]

    def test_no_members_at_all(self):
        for merged in (MergedList([]), PackedMergedList([])):
            assert not merged
            assert merged.next() is None


class TestDuplicateHeads:
    def test_same_head_across_variants_pops_both(self):
        spec = {"a": [(1, 2)], "b": [(1, 2)], "c": [(1, 3)]}
        for merged, _pack, _unpack in both(spec):
            popped = pop_subtree(merged, (1, 2))
            assert sorted(e[3] for e in popped) == ["a", "b"]
            # The non-group head survives.
            assert len(pop_subtree(merged, (1, 3))) == 1

    def test_duplicate_heads_skip_together(self):
        spec = {"a": [(1, 1), (2, 2)], "b": [(1, 1), (3, 1)]}
        for merged, pack, unpack in both(spec):
            head = merged.skip_to(pack((2,)))
            assert unpack(head) == (2, 2)
            assert merged.total_skips == 2


class TestSkipBeyondAll:
    def test_skip_to_past_everything_exhausts(self):
        spec = {"a": [(1, 1)], "b": [(1, 2), (2, 4)]}
        for merged, pack, _unpack in both(spec):
            assert merged.skip_to(pack((9,))) is None
            assert not merged
            assert merged.total_skips == 3
            # Exhausted lists stay exhausted.
            assert merged.next() is None
            assert pop_subtree(merged, (9,)) == []


class TestGroupDeeperThanHeads:
    def test_pop_subtree_with_deeper_group_pops_nothing(self):
        # Every head is an ancestor of the group, never inside it.
        spec = {"a": [(1,)], "b": [(1, 2)]}
        for merged, _pack, unpack in both(spec):
            assert pop_subtree(merged, (1, 2, 3)) == []
            # Heads are untouched.
            assert unpack(merged.cur_pos()) == (1,)

    def test_skip_to_deeper_group_consumes_ancestors(self):
        # Document order puts ancestors strictly before the group, so
        # skip_to(group) jumps over them in both engines.
        spec = {"a": [(1,), (1, 2, 3, 1)], "b": [(1, 2)]}
        for merged, pack, unpack in both(spec):
            head = merged.skip_to(pack((1, 2, 3)))
            assert unpack(head) == (1, 2, 3, 1)
            popped = pop_subtree(merged, (1, 2, 3))
            assert [unpack(e) for e in popped] == [(1, 2, 3, 1)]
            assert merged.cur_pos() is None
