"""Tests for tokenization rules (Section VII-A's indexing conventions)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.index.tokenizer import (
    DEFAULT_STOPWORDS,
    Tokenizer,
    TokenizerConfig,
)


class TestBasics:
    def test_splits_on_whitespace_and_punctuation(self):
        t = Tokenizer()
        assert t.tokenize("tree-search, keyword queries!") == [
            "tree",
            "search",
            "keyword",
            "queries",
        ]

    def test_lowercases(self):
        assert Tokenizer().tokenize("Hinrich SCHUETZE") == [
            "hinrich",
            "schuetze",
        ]

    def test_drops_short_tokens(self):
        assert Tokenizer().tokenize("a of db xml") == ["xml"]

    def test_drops_numbers(self):
        assert Tokenizer().tokenize("icde 2011 vldb 99") == ["icde", "vldb"]

    def test_keeps_alphanumeric_mixtures(self):
        assert Tokenizer().tokenize("mp3 h264") == ["mp3", "h264"]

    def test_drops_stopwords(self):
        assert Tokenizer().tokenize("the tree and the trie") == [
            "tree",
            "trie",
        ]

    def test_empty_text(self):
        assert Tokenizer().tokenize("") == []

    def test_punctuation_only(self):
        assert Tokenizer().tokenize("... --- !!!") == []


class TestConfig:
    def test_custom_min_length(self):
        t = Tokenizer(TokenizerConfig(min_length=1, stopwords=frozenset()))
        assert t.tokenize("a bc") == ["a", "bc"]

    def test_case_preserving(self):
        t = Tokenizer(TokenizerConfig(lowercase=False))
        assert t.tokenize("Tree") == ["Tree"]

    def test_numbers_allowed(self):
        t = Tokenizer(TokenizerConfig(drop_numbers=False))
        assert t.tokenize("2011") == ["2011"]

    def test_custom_stopwords(self):
        t = Tokenizer(TokenizerConfig(stopwords=frozenset({"tree"})))
        assert t.tokenize("tree trie") == ["trie"]

    def test_accepts(self):
        t = Tokenizer()
        assert t.accepts("tree")
        assert not t.accepts("ab")
        assert not t.accepts("the")


class TestProperties:
    @given(st.text(max_size=200))
    def test_tokens_obey_config(self, text):
        t = Tokenizer()
        for token in t.tokenize(text):
            assert len(token) >= 3
            assert token == token.lower()
            assert not token.isdigit()
            assert token not in DEFAULT_STOPWORDS
            assert token.isalnum()

    @given(st.text(max_size=200))
    def test_iter_matches_tokenize(self, text):
        t = Tokenizer()
        assert list(t.iter_tokens(text)) == t.tokenize(text)

    @given(st.lists(st.sampled_from(["tree", "trie", "icde"]), max_size=8))
    def test_known_tokens_roundtrip(self, words):
        text = " ".join(words)
        assert Tokenizer().tokenize(text) == words
