"""Tests for the embedded word pools and pseudo-word synthesis."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.words import (
    COMMON_WORDS,
    CS_TERMS,
    FIRST_NAMES,
    LAST_NAMES,
    VENUES,
    WIKI_TOPICS,
    inflect,
    synthesize_words,
)
from repro.index.tokenizer import Tokenizer


class TestPools:
    def test_pools_non_trivial(self):
        assert len(COMMON_WORDS) > 400
        assert len(CS_TERMS) > 250
        assert len(FIRST_NAMES) > 100
        assert len(LAST_NAMES) > 200
        assert len(WIKI_TOPICS) > 250
        assert len(VENUES) > 20

    def test_pools_deduplicated(self):
        for pool in (COMMON_WORDS, CS_TERMS, FIRST_NAMES, LAST_NAMES):
            assert len(pool) == len(set(pool))

    def test_all_tokens_pass_default_tokenizer(self):
        tokenizer = Tokenizer()
        for pool in (
            COMMON_WORDS,
            CS_TERMS,
            FIRST_NAMES,
            LAST_NAMES,
            VENUES,
            WIKI_TOPICS,
        ):
            for word in pool:
                assert tokenizer.tokenize(word) == [word], word


class TestSynthesizeWords:
    def test_count_and_uniqueness(self):
        words = synthesize_words(500, seed=3)
        assert len(words) == 500
        assert len(set(words)) == 500

    def test_deterministic(self):
        assert synthesize_words(100, seed=9) == synthesize_words(
            100, seed=9
        )

    def test_different_seeds_differ(self):
        assert synthesize_words(100, seed=1) != synthesize_words(
            100, seed=2
        )

    def test_words_are_indexable(self):
        tokenizer = Tokenizer()
        for word in synthesize_words(200, seed=5):
            assert tokenizer.tokenize(word) == [word]


class TestInflect:
    @given(st.sampled_from(sorted(CS_TERMS)), st.integers(0, 10_000))
    def test_inflection_is_close_but_different(self, word, seed):
        rng = random.Random(seed)
        variant = inflect(word, rng)
        assert variant != word
        assert variant.startswith(word[:-1])
        assert 1 <= len(variant) - len(word) + 1 <= 4

    def test_e_handling(self):
        rng = random.Random(0)
        for _ in range(50):
            variant = inflect("merge", rng)
            assert "ee" not in variant[-4:] or variant.endswith("ees")
