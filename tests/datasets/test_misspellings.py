"""Tests for the misspelling list and rule-based misspeller."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.misspellings import (
    COMMON_MISSPELLINGS,
    reverse_map,
    rule_misspell,
)
from repro.fastss.edit_distance import edit_distance


class TestCommonMisspellings:
    def test_non_trivial_size(self):
        assert len(COMMON_MISSPELLINGS) > 150

    def test_no_identity_entries(self):
        for wrong, right in COMMON_MISSPELLINGS.items():
            assert wrong != right

    def test_known_entries(self):
        assert COMMON_MISSPELLINGS["recieve"] == "receive"
        assert COMMON_MISSPELLINGS["seperate"] == "separate"
        assert COMMON_MISSPELLINGS["gerat"] == "great"  # Table II's sample

    def test_some_entries_are_distant(self):
        """Section VII-A: some misspellings need ε > 1 (even > 2)."""
        distances = [
            edit_distance(wrong, right)
            for wrong, right in COMMON_MISSPELLINGS.items()
        ]
        assert max(distances) >= 3
        assert sum(1 for d in distances if d >= 2) >= 10

    def test_reverse_map(self):
        reverse = reverse_map()
        assert "committee" in reverse
        assert set(reverse["committee"]) == {"comittee", "commitee"}

    def test_reverse_map_sorted(self):
        for forms in reverse_map().values():
            assert forms == sorted(forms)


class TestRuleMisspell:
    @given(
        st.sampled_from(
            ["architecture", "clustering", "verification", "database",
             "believe", "parallel", "retrieval", "committee"]
        ),
        st.integers(0, 5000),
    )
    def test_always_changes_the_word(self, word, seed):
        rng = random.Random(seed)
        assert rule_misspell(word, rng) != word

    @given(
        st.sampled_from(["architecture", "clustering", "believe"]),
        st.integers(0, 2000),
    )
    def test_stays_within_small_distance(self, word, seed):
        rng = random.Random(seed)
        misspelt = rule_misspell(word, rng)
        assert edit_distance(word, misspelt) <= 2

    def test_deterministic_under_seed(self):
        a = rule_misspell("architecture", random.Random(42))
        b = rule_misspell("architecture", random.Random(42))
        assert a == b
