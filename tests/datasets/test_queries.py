"""Tests for the CLEAN/RAND/RULE query workload generation."""

import random

import pytest

from repro.datasets.queries import (
    MIN_PERTURBED_LENGTH,
    build_query_workloads,
    rand_perturb_query,
    rand_perturb_word,
    rule_perturb_word,
    sample_clean_queries,
)
from repro.datasets.synthetic_dblp import DBLPConfig, generate_dblp
from repro.fastss.edit_distance import edit_distance
from repro.index.corpus import build_corpus_index


@pytest.fixture(scope="module")
def setting():
    corpus = generate_dblp(DBLPConfig(publications=200, seed=11))
    index = build_corpus_index(corpus.document)
    return corpus.document, index


class TestCleanSampling:
    def test_queries_have_results(self, setting):
        document, index = setting
        rng = random.Random(0)
        queries = sample_clean_queries(
            document, index.tokenizer, 15, rng
        )
        assert len(queries) == 15
        for query in queries:
            # All keywords co-occur in some top-level entity.
            hit = any(
                all(
                    t in entity.subtree_text().split()
                    for t in query
                )
                for entity in document.root.children
            )
            assert hit, query

    def test_word_lengths(self, setting):
        document, index = setting
        queries = sample_clean_queries(
            document, index.tokenizer, 10, random.Random(1)
        )
        for query in queries:
            assert all(
                len(w) >= MIN_PERTURBED_LENGTH for w in query
            )

    def test_dblp_style_anchored_on_author(self, setting):
        document, index = setting
        queries = sample_clean_queries(
            document, index.tokenizer, 10, random.Random(2),
            style="dblp",
        )
        author_tokens = set()
        for entity in document.root.children:
            for child in entity.children:
                if child.label == "author":
                    author_tokens.update(child.text.split())
        for query in queries:
            assert query[0] in author_tokens

    def test_deterministic(self, setting):
        document, index = setting
        a = sample_clean_queries(
            document, index.tokenizer, 8, random.Random(3)
        )
        b = sample_clean_queries(
            document, index.tokenizer, 8, random.Random(3)
        )
        assert a == b

    def test_empty_document(self, setting):
        from repro.xmltree.document import XMLDocument
        from repro.xmltree.node import XMLNode

        _document, index = setting
        empty = XMLDocument(XMLNode("root"))
        assert sample_clean_queries(
            empty, index.tokenizer, 5, random.Random(0)
        ) == []


class TestRandPerturbation:
    def test_result_not_in_vocabulary(self, setting):
        _document, index = setting
        rng = random.Random(4)
        for word in ("architecture", "clustering", "database"):
            if word not in index.vocabulary:
                continue
            dirty = rand_perturb_word(word, index.vocabulary, rng)
            assert dirty not in index.vocabulary
            assert edit_distance(word, dirty) == 1

    def test_short_words_untouched(self, setting):
        _document, index = setting
        assert rand_perturb_word(
            "tree", index.vocabulary, random.Random(0)
        ) == "tree"

    def test_multi_edit(self, setting):
        _document, index = setting
        rng = random.Random(5)
        dirty = rand_perturb_word(
            "architecture", index.vocabulary, rng, edits=2
        )
        assert 1 <= edit_distance("architecture", dirty) <= 2

    def test_whole_query(self, setting):
        _document, index = setting
        rng = random.Random(6)
        dirty = rand_perturb_query(
            ("architecture", "pipeline"), index.vocabulary, rng
        )
        assert len(dirty) == 2
        assert dirty != ("architecture", "pipeline")


class TestRulePerturbation:
    def test_listed_misspelling_preferred(self, setting):
        _document, index = setting
        rng = random.Random(7)
        dirty = rule_perturb_word(
            "architecture", index.vocabulary, rng
        )
        # 'architecture' is in the common-misspellings reverse map.
        assert dirty == "archetecture"

    def test_fallback_rules(self, setting):
        _document, index = setting
        rng = random.Random(8)
        dirty = rule_perturb_word("pipeline", index.vocabulary, rng)
        assert dirty != "pipeline"
        assert dirty not in index.vocabulary

    def test_short_word_untouched(self, setting):
        _document, index = setting
        assert rule_perturb_word(
            "icde", index.vocabulary, random.Random(0)
        ) == "icde"


class TestWorkloads:
    def test_three_kinds(self, setting):
        document, index = setting
        workloads = build_query_workloads(
            index, document, count=10, seed=99
        )
        assert set(workloads) == {"CLEAN", "RAND", "RULE"}
        assert all(len(v) == 10 for v in workloads.values())

    def test_golden_is_clean_query(self, setting):
        document, index = setting
        workloads = build_query_workloads(
            index, document, count=10, seed=99
        )
        for kind in ("RAND", "RULE"):
            for record, clean_record in zip(
                workloads[kind], workloads["CLEAN"]
            ):
                assert record.golden == (clean_record.dirty,)

    def test_dirty_queries_are_dirty(self, setting):
        document, index = setting
        workloads = build_query_workloads(
            index, document, count=10, seed=99
        )
        changed = sum(
            record.dirty != record.golden[0]
            for record in workloads["RAND"]
        )
        assert changed == len(workloads["RAND"])

    def test_deterministic(self, setting):
        document, index = setting
        a = build_query_workloads(index, document, count=6, seed=5)
        b = build_query_workloads(index, document, count=6, seed=5)
        assert a == b
