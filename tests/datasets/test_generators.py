"""Tests for the synthetic DBLP and Wikipedia generators."""

import pytest

from repro.datasets.sampling import ZipfSampler
from repro.datasets.synthetic_dblp import DBLPConfig, generate_dblp
from repro.datasets.synthetic_wiki import WikiConfig, generate_wiki
from repro.index.corpus import build_corpus_index

import random


class TestZipfSampler:
    def test_rank_one_most_frequent(self):
        sampler = ZipfSampler(["a", "b", "c", "d"], exponent=1.2)
        rng = random.Random(0)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for _ in range(4000):
            counts[sampler.sample(rng)] += 1
        assert counts["a"] > counts["b"] > counts["d"]

    def test_exponent_zero_uniformish(self):
        sampler = ZipfSampler(["a", "b"], exponent=0.0)
        rng = random.Random(1)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[sampler.sample(rng)] += 1
        assert abs(counts["a"] - counts["b"]) < 250

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([])

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(["a"], exponent=-1)

    def test_sample_distinct(self):
        sampler = ZipfSampler(list("abcdefgh"))
        rng = random.Random(2)
        chosen = sampler.sample_distinct(rng, 5)
        assert len(chosen) == len(set(chosen)) == 5

    def test_sample_many_length(self):
        sampler = ZipfSampler(["x", "y"])
        assert len(sampler.sample_many(random.Random(3), 7)) == 7


class TestDBLPGenerator:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_dblp(DBLPConfig(publications=150, seed=5))

    def test_publication_count(self, corpus):
        assert len(corpus.document.root.children) == 150

    def test_deterministic(self):
        a = generate_dblp(DBLPConfig(publications=30, seed=9))
        b = generate_dblp(DBLPConfig(publications=30, seed=9))
        assert a.document.serialize() == b.document.serialize()

    def test_seed_changes_output(self):
        a = generate_dblp(DBLPConfig(publications=30, seed=1))
        b = generate_dblp(DBLPConfig(publications=30, seed=2))
        assert a.document.serialize() != b.document.serialize()

    def test_data_centric_shape(self, corpus):
        stats = corpus.document.stats
        assert stats.max_depth == 3  # dblp/pub/field
        assert 2.0 < stats.avg_depth < 3.0

    def test_every_publication_has_title_and_author(self, corpus):
        for publication in corpus.document.root.children:
            labels = [c.label for c in publication.children]
            assert "title" in labels
            assert "author" in labels

    def test_publication_types(self, corpus):
        labels = {c.label for c in corpus.document.root.children}
        assert labels <= {"article", "inproceedings", "phdthesis"}
        assert "article" in labels

    def test_article_dominates(self, corpus):
        counts: dict[str, int] = {}
        for child in corpus.document.root.children:
            counts[child.label] = counts.get(child.label, 0) + 1
        assert counts["article"] > counts.get("inproceedings", 0)

    def test_indexable(self, corpus):
        index = build_corpus_index(corpus.document)
        assert len(index.vocabulary) > 100
        assert index.entity_count(
            index.path_table.id_of(("dblp", "article"))
        ) > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DBLPConfig(publications=0)
        with pytest.raises(ValueError):
            DBLPConfig(
                publication_types=("a",), type_weights=(1, 2)
            )


class TestWikiGenerator:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_wiki(WikiConfig(articles=40, seed=5))

    def test_article_count(self, corpus):
        assert len(corpus.document.root.children) == 40

    def test_deterministic(self):
        a = generate_wiki(WikiConfig(articles=10, seed=4))
        b = generate_wiki(WikiConfig(articles=10, seed=4))
        assert a.document.serialize() == b.document.serialize()

    def test_document_centric_shape(self, corpus):
        stats = corpus.document.stats
        # collection/article/body/section/.../p
        assert stats.max_depth >= 6
        assert stats.avg_depth > 3.5

    def test_deeper_than_dblp(self, corpus):
        dblp = generate_dblp(DBLPConfig(publications=40, seed=5))
        assert (
            corpus.document.stats.max_depth
            > dblp.document.stats.max_depth
        )

    def test_larger_vocabulary_than_dblp(self):
        wiki = generate_wiki(WikiConfig(articles=60, seed=3))
        dblp = generate_dblp(DBLPConfig(publications=400, seed=3))
        wiki_vocab = len(build_corpus_index(wiki.document).vocabulary)
        dblp_vocab = len(build_corpus_index(dblp.document).vocabulary)
        assert wiki_vocab > 1.5 * dblp_vocab

    def test_every_article_has_name_and_body(self, corpus):
        for article in corpus.document.root.children:
            labels = [c.label for c in article.children]
            assert labels[0] == "name"
            assert "body" in labels

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WikiConfig(articles=0)
        with pytest.raises(ValueError):
            WikiConfig(max_section_depth=0)
