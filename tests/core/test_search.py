"""Tests for entity search (executing cleaned queries)."""

import pytest

from repro.core.config import XCleanConfig
from repro.core.search import EntitySearch
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def document():
    return XMLDocument(paper_example_tree())


@pytest.fixture(scope="module")
def search(document):
    return EntitySearch(
        build_corpus_index(document),
        config=XCleanConfig(max_errors=1, reduction=0.8, min_depth=2),
    )


class TestSearch:
    def test_result_type_inferred(self, search):
        assert search.result_type_of("trie icde") == "/a/d"
        assert search.result_type_of("tree icde") == "/a/c"

    def test_entities_are_13_and_14(self, search):
        results = search.search("trie icde")
        assert [r.dewey for r in results] == [(1, 3), (1, 4)] or [
            r.dewey for r in results
        ] == [(1, 4), (1, 3)]

    def test_every_result_contains_all_keywords(self, search, document):
        for result in search.search("trie icde"):
            text = document.subtree_text(result.dewey).split()
            assert "trie" in text and "icde" in text

    def test_scores_descending(self, search):
        scores = [r.score for r in search.search("trie icde")]
        assert scores == sorted(scores, reverse=True)

    def test_shorter_entity_scores_higher(self, search):
        # 1.4 (2 tokens, both keywords) beats 1.3 (3 tokens).
        results = search.search("trie icde")
        assert results[0].dewey == (1, 4)

    def test_k_limits(self, search):
        assert len(search.search("trie icde", k=1)) == 1

    def test_no_cooccurrence_returns_empty(self, search):
        assert search.search("trees icdt") == []

    def test_unknown_token_returns_empty(self, search):
        assert search.search("notindexed icde") == []

    def test_empty_query_raises(self, search):
        with pytest.raises(QueryError):
            search.search("of the")

    def test_lengths_reported(self, search):
        for result in search.search("trie icde"):
            assert result.length >= 2

    def test_render_snippet(self, search, document):
        result = search.search("trie icde")[0]
        snippet = result.render(document)
        assert "trie" in snippet and "icde" in snippet

    def test_render_truncates(self, search, document):
        result = search.search("trie icde")[0]
        assert len(result.render(document, max_chars=5)) <= 5


class TestCleanThenSearch:
    """The paper's end-to-end story: clean a typo, run the suggestion."""

    def test_pipeline(self, search, document):
        from repro.core.cleaner import XCleanSuggester

        corpus = search.corpus
        suggester = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        suggestion = suggester.suggest("trie icdw", k=1)[0]
        results = search.search(suggestion.text)
        assert results, "cleaned query must have results"
        for result in results:
            text = document.subtree_text(result.dewey).split()
            assert all(token in text for token in suggestion.tokens)
