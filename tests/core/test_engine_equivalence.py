"""Packed engine ≡ tuple engine.

The packed (columnar, int-keyed) query path is a pure representation
change: for any query both engines must return the same top-k
suggestions — same candidate tokens, same result types, scores within
1e-9 (the implementation actually accumulates in identical order, so
scores are typically bit-identical).
"""

import dataclasses

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.eval.experiments import dblp_setting
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


def pair_of_suggesters(corpus, generator=None, **overrides):
    packed = XCleanSuggester(
        corpus,
        generator=generator,
        config=XCleanConfig(engine="packed", **overrides),
    )
    tuple_engine = XCleanSuggester(
        corpus,
        generator=generator,
        config=XCleanConfig(engine="tuple", **overrides),
    )
    return packed, tuple_engine


def assert_same_output(packed, tuple_engine, query, k=10):
    fast = packed.suggest(query, k)
    reference = tuple_engine.suggest(query, k)
    assert [(s.tokens, s.result_type) for s in fast] == [
        (s.tokens, s.result_type) for s in reference
    ]
    for got, want in zip(fast, reference):
        assert got.score == pytest.approx(want.score, rel=1e-9)
    # The merge loops must do the same amount of work, too.
    assert (
        packed.last_stats.postings_read
        == tuple_engine.last_stats.postings_read
    )
    assert (
        packed.last_stats.groups_processed
        == tuple_engine.last_stats.groups_processed
    )


class TestPaperExample:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus_index(XMLDocument(paper_example_tree()))

    @pytest.mark.parametrize(
        "query", ["tree icdt", "tre icd", "databas", "xml tree"]
    )
    def test_same_topk(self, corpus, query):
        packed, tuple_engine = pair_of_suggesters(corpus, max_errors=1)
        assert_same_output(packed, tuple_engine, query)

    def test_score_all_identical(self, corpus):
        packed, tuple_engine = pair_of_suggesters(
            corpus, max_errors=1, gamma=None
        )
        fast = packed.score_all("tree icdt")
        reference = tuple_engine.score_all("tree icdt")
        assert set(fast) == set(reference)
        for candidate, score in fast.items():
            assert score == pytest.approx(
                reference[candidate], rel=1e-9
            )

    def test_length_prior_equivalent(self, corpus):
        packed, tuple_engine = pair_of_suggesters(
            corpus, max_errors=1, prior="length"
        )
        assert_same_output(packed, tuple_engine, "tree icdt")

    def test_no_skipping_equivalent(self, corpus):
        packed, tuple_engine = pair_of_suggesters(
            corpus, max_errors=1, use_skipping=False
        )
        assert_same_output(packed, tuple_engine, "tree icdt")


class TestSyntheticDBLP:
    @pytest.fixture(scope="class")
    def setting(self):
        return dblp_setting("small")

    # merge_kernel=True routes the packed engine through the batch
    # merge kernel (galloping intersection + plan cache), False through
    # the classic per-group bisect loop — both must match the tuple
    # reference on every workload query.
    @pytest.mark.parametrize("merge_kernel", [True, False])
    @pytest.mark.parametrize("kind", ["CLEAN", "RAND", "RULE"])
    def test_workload_equivalence(self, setting, kind, merge_kernel):
        packed = XCleanSuggester(
            setting.corpus,
            generator=setting.generator.fresh_cache(),
            config=XCleanConfig(
                engine="packed", merge_kernel=merge_kernel
            ),
        )
        tuple_engine = XCleanSuggester(
            setting.corpus,
            generator=setting.generator.fresh_cache(),
            config=XCleanConfig(engine="tuple"),
        )
        for record in setting.workloads[kind]:
            assert_same_output(
                packed, tuple_engine, record.dirty_text, k=10
            )

    def test_config_round_trips_engine(self):
        config = XCleanConfig(engine="tuple")
        assert dataclasses.replace(config, engine="packed").engine == (
            "packed"
        )
