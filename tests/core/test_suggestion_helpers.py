"""Tests for the small shared value objects (Suggestion, QueryRecord)."""

import pytest

from repro.core.suggestion import CleaningStats, Suggestion
from repro.datasets.queries import QueryRecord


class TestSuggestion:
    def test_text_joins_tokens(self):
        s = Suggestion(tokens=("tree", "icde"), score=0.5)
        assert s.text == "tree icde"
        assert str(s) == "tree icde"

    def test_frozen(self):
        s = Suggestion(tokens=("a",), score=1.0)
        with pytest.raises(AttributeError):
            s.score = 2.0  # type: ignore[misc]

    def test_result_type_optional(self):
        assert Suggestion(tokens=("a",), score=0.1).result_type is None

    def test_equality(self):
        a = Suggestion(tokens=("a",), score=0.1, result_type="/x")
        b = Suggestion(tokens=("a",), score=0.1, result_type="/x")
        assert a == b


class TestQueryRecord:
    def test_text_properties(self):
        record = QueryRecord(
            dirty=("tre", "icde"),
            golden=(("tree", "icde"), ("trie", "icde")),
            kind="RAND",
        )
        assert record.dirty_text == "tre icde"
        assert record.golden_texts == ("tree icde", "trie icde")

    def test_frozen(self):
        record = QueryRecord(dirty=("a",), golden=(("a",),), kind="CLEAN")
        with pytest.raises(AttributeError):
            record.kind = "RAND"  # type: ignore[misc]


class TestCleaningStats:
    def test_defaults_zero(self):
        stats = CleaningStats()
        assert stats.groups_processed == 0
        assert stats.postings_read == 0
        assert stats.extra == {}

    def test_extra_is_per_instance(self):
        a = CleaningStats()
        b = CleaningStats()
        a.extra["x"] = 1.0
        assert b.extra == {}


class TestSpaceAwareTau2:
    def test_two_changes(self):
        from repro.core.cleaner import XCleanSuggester
        from repro.core.config import XCleanConfig
        from repro.core.space_errors import SpaceAwareSuggester
        from repro.index.corpus import build_corpus_index
        from repro.xmltree.document import XMLDocument

        corpus = build_corpus_index(
            XMLDocument.from_string(
                "<db>"
                "<rec><t>data base system design</t></rec>"
                "<rec><t>database tuning</t></rec>"
                "</db>"
            )
        )
        base = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        wrapped = SpaceAwareSuggester(base, max_changes=2)
        # 'databasesystem' needs two splits: data|base + ...system —
        # one merge direction: 'database system' ← split once; two
        # changes allow 'data base system'.
        tokens = {
            s.tokens for s in wrapped.suggest("databasesystem design")
        }
        assert ("database", "system", "design") in tokens or (
            "data",
            "base",
            "system",
            "design",
        ) in tokens
