"""Tests for the Dirichlet-smoothed unigram model (Eq. 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.language_model import DirichletLanguageModel
from repro.exceptions import ConfigurationError
from repro.index.vocabulary import Vocabulary


@pytest.fixture
def vocab() -> Vocabulary:
    v = Vocabulary()
    v.add_occurrence("tree", 6)
    v.add_occurrence("trie", 2)
    v.add_occurrence("icde", 2)
    return v


class TestFormula:
    def test_exact_value(self, vocab):
        lm = DirichletLanguageModel(vocab, mu=10.0)
        # (count + mu * cf/total) / (len + mu) = (3 + 10*0.6) / (20 + 10)
        assert lm.probability("tree", 3, 20) == pytest.approx(9.0 / 30.0)

    def test_zero_count_gets_background_mass(self, vocab):
        lm = DirichletLanguageModel(vocab, mu=10.0)
        assert lm.probability("tree", 0, 20) == pytest.approx(6.0 / 30.0)

    def test_unknown_token_zero_background(self, vocab):
        lm = DirichletLanguageModel(vocab, mu=10.0)
        assert lm.probability("zzz", 0, 20) == 0.0
        assert lm.probability("zzz", 2, 20) == pytest.approx(2.0 / 30.0)

    def test_empty_document_degenerates_to_background(self, vocab):
        lm = DirichletLanguageModel(vocab, mu=100.0)
        assert lm.probability("tree", 0, 0) == pytest.approx(0.6)

    def test_mu_validation(self, vocab):
        with pytest.raises(ConfigurationError):
            DirichletLanguageModel(vocab, mu=0.0)
        with pytest.raises(ConfigurationError):
            DirichletLanguageModel(vocab, mu=-5.0)


class TestDistributionProperties:
    def test_sums_to_one_over_vocabulary(self, vocab):
        # Take a document holding 4 'tree' and 1 'icde' (length 5).
        lm = DirichletLanguageModel(vocab, mu=7.0)
        counts = {"tree": 4, "icde": 1, "trie": 0}
        total = sum(
            lm.probability(token, counts[token], 5) for token in counts
        )
        assert total == pytest.approx(1.0)

    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.1, max_value=1000.0),
    )
    def test_probability_in_unit_interval(self, count, extra, mu):
        vocab = Vocabulary()
        vocab.add_occurrence("tree", 5)
        vocab.add_occurrence("trie", 5)
        lm = DirichletLanguageModel(vocab, mu=mu)
        length = count + extra
        p = lm.probability("tree", count, length)
        assert 0.0 <= p <= 1.0

    def test_monotone_in_count(self, vocab):
        lm = DirichletLanguageModel(vocab, mu=10.0)
        assert lm.probability("tree", 5, 20) > lm.probability("tree", 2, 20)

    def test_higher_mu_pulls_toward_background(self, vocab):
        # 'tree' background is 0.6; a doc with rel freq 1/20 = 0.05 is
        # below background, so more smoothing *raises* the estimate.
        weak = DirichletLanguageModel(vocab, mu=1.0)
        strong = DirichletLanguageModel(vocab, mu=1000.0)
        assert strong.probability("tree", 1, 20) > weak.probability(
            "tree", 1, 20
        )


class TestDocumentProbability:
    def test_product(self, vocab):
        lm = DirichletLanguageModel(vocab, mu=10.0)
        single = lm.probability("tree", 2, 10) * lm.probability(
            "icde", 1, 10
        )
        combined = lm.document_probability(
            ["tree", "icde"], [2, 1], 10
        )
        assert combined == pytest.approx(single)

    def test_empty_query(self, vocab):
        lm = DirichletLanguageModel(vocab)
        assert lm.document_probability([], [], 10) == 1.0
