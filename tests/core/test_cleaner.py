"""Tests for Algorithm 1 (XCleanSuggester): paper trace + oracle equality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.naive import NaiveCleaner
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import build_tree, paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


def make_suggester(corpus, **overrides):
    defaults = dict(max_errors=1, gamma=None, min_depth=2, reduction=0.8)
    defaults.update(overrides)
    return XCleanSuggester(corpus, config=XCleanConfig(**defaults))


class TestPaperTrace:
    """Example 5's execution trace against the real implementation."""

    def test_groups_processed(self, corpus):
        suggester = make_suggester(corpus)
        suggester.suggest("tree icdt")
        # Groups 1.2, 1.3 and 1.4 are processed; 1.1 contains only a
        # tree-variant and 1.5 is never reached because the icdt/icde
        # MergedList exhausts first.
        assert suggester.last_stats.groups_processed == 3

    def test_skipping_saves_reads(self, corpus):
        suggester = make_suggester(corpus)
        suggester.suggest("tree icdt")
        stats = suggester.last_stats
        # 8 postings are read (3 in group 1.2, 3 in 1.3, 2 in 1.4); the
        # trees posting under 1.1 is skipped; trie's two postings under
        # 1.5 are never touched.
        assert stats.postings_read == 8
        assert stats.postings_skipped == 1

    def test_space_size_matches_example2(self, corpus):
        suggester = make_suggester(corpus)
        suggester.suggest("tree icdt")
        assert suggester.last_stats.space_size == 6

    def test_suggestions_have_valid_result_types(self, corpus):
        suggester = make_suggester(corpus)
        for suggestion in suggester.suggest("tree icdt"):
            assert suggestion.result_type in {"/a/c", "/a/d"}

    def test_candidates_connected_below_root_only(self, corpus):
        suggester = make_suggester(corpus)
        tokens = {s.tokens for s in suggester.suggest("tree icdt")}
        # ('trees', 'icde')-style candidates connected only through the
        # root must not appear.
        assert ("trees", "icde") not in tokens
        assert ("trees", "icdt") not in tokens


class TestSuggestions:
    def test_non_empty_results_guarantee(self, corpus):
        """Every suggestion must have at least one entity containing
        all its keywords — checked against the raw tree."""
        doc = XMLDocument(paper_example_tree())
        suggester = make_suggester(corpus)
        for suggestion in suggester.suggest("tree icdt"):
            found = False
            for node, path in doc.iter_with_paths():
                text = set(node.subtree_text().split())
                if all(t in text for t in suggestion.tokens):
                    if "/" + "/".join(path) == suggestion.result_type:
                        found = True
                        break
            assert found, f"{suggestion.text} has no results"

    def test_scores_descending(self, corpus):
        suggester = make_suggester(corpus)
        scores = [s.score for s in suggester.suggest("tree icdt")]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_output(self, corpus):
        suggester = make_suggester(corpus)
        assert len(suggester.suggest("tree icdt", k=2)) == 2

    def test_clean_query_ranks_itself_high(self, corpus):
        suggester = make_suggester(corpus)
        top = suggester.suggest("trie icde", k=1)[0]
        assert top.tokens == ("trie", "icde")

    def test_empty_query_raises(self, corpus):
        with pytest.raises(QueryError):
            make_suggester(corpus).suggest("of to")

    def test_unmatchable_keyword_returns_nothing(self, corpus):
        suggester = make_suggester(corpus)
        assert suggester.suggest("tree zzzzzzzzz") == []

    def test_single_keyword_query(self, corpus):
        suggester = make_suggester(corpus)
        suggestions = suggester.suggest("tre")
        assert suggestions
        assert all(len(s.tokens) == 1 for s in suggestions)


class TestOracleEquivalence:
    """Algorithm 1 with γ=∞ must reproduce the naive scorer exactly."""

    QUERIES = ["tree icdt", "trie icde", "tre icde", "tree", "icde trie"]

    @pytest.mark.parametrize("query", QUERIES)
    def test_scores_match_naive(self, corpus, query):
        fast = make_suggester(corpus).score_all(query)
        naive = NaiveCleaner(
            corpus,
            config=XCleanConfig(max_errors=1, gamma=None, min_depth=2),
        ).score_all(query)
        naive = {c: s for c, s in naive.items() if s > 0}
        assert set(fast) == set(naive)
        for candidate, score in fast.items():
            assert score == pytest.approx(naive[candidate], rel=1e-12)

    def test_no_skipping_same_scores(self, corpus):
        with_skip = make_suggester(corpus, use_skipping=True)
        without_skip = make_suggester(corpus, use_skipping=False)
        assert with_skip.score_all("tree icdt") == pytest.approx(
            without_skip.score_all("tree icdt")
        )

    def test_no_skipping_reads_more(self, corpus):
        with_skip = make_suggester(corpus, use_skipping=True)
        without_skip = make_suggester(corpus, use_skipping=False)
        with_skip.suggest("tree icdt")
        without_skip.suggest("tree icdt")
        assert (
            without_skip.last_stats.postings_read
            > with_skip.last_stats.postings_read
        )
        assert without_skip.last_stats.postings_skipped == 0


tokens_strategy = st.sampled_from(
    ["tree", "trie", "icde", "icdt", "data", "mining"]
)


@st.composite
def random_tree(draw):
    """A random 3-level document: root -> sections -> leaves(token)."""
    section_labels = st.sampled_from(["sec", "div"])
    sections = draw(
        st.lists(
            st.tuples(
                section_labels,
                st.lists(tokens_strategy, min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=5,
        )
    )
    spec = (
        "root",
        [
            (label, [("item", token) for token in leaf_tokens])
            for label, leaf_tokens in sections
        ],
    )
    return build_tree(spec)


class TestOracleEquivalenceProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        random_tree(),
        st.lists(tokens_strategy, min_size=1, max_size=2),
    )
    def test_random_documents(self, tree, query_tokens):
        corpus = build_corpus_index(XMLDocument(tree))
        query = " ".join(query_tokens)
        config = XCleanConfig(max_errors=1, gamma=None, min_depth=2)
        fast = XCleanSuggester(corpus, config=config).score_all(query)
        naive = NaiveCleaner(corpus, config=config).score_all(query)
        naive = {c: s for c, s in naive.items() if s > 0}
        assert set(fast) == set(naive)
        for candidate, score in fast.items():
            assert score == pytest.approx(naive[candidate], rel=1e-9)


class TestGammaPruning:
    def test_gamma_one_keeps_best_available(self, corpus):
        pruned = make_suggester(corpus, gamma=1)
        suggestions = pruned.suggest("tree icdt")
        assert len(suggestions) == 1

    def test_large_gamma_equals_unbounded(self, corpus):
        bounded = make_suggester(corpus, gamma=1000)
        unbounded = make_suggester(corpus, gamma=None)
        assert bounded.score_all("tree icdt") == pytest.approx(
            unbounded.score_all("tree icdt")
        )

    def test_small_gamma_evicts(self, corpus):
        pruned = make_suggester(corpus, gamma=1)
        pruned.suggest("tree icdt")
        assert pruned.last_stats.accumulator_evictions >= 1
