"""The zero-downtime generation swap at the serving tier.

Covers the service-level update pipeline (``SuggestionService`` and
``ShardedSuggestionService``): acknowledged updates are query-visible
within one request, compaction swaps to the fresh generation with zero
dropped queries, and no answer ever mixes generations.  Also the cache
regressions: every cache a swap could poison (result LRU, merged
columns memo, result-type LRU) is generation- or epoch-keyed.
"""

import dataclasses
import os
import threading

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.result_type import ResultTypeConfig, ResultTypeFinder
from repro.core.server import SuggestionService
from repro.core.shards import ShardedSuggestionService
from repro.exceptions import ConfigurationError
from repro.index.corpus import build_corpus_index
from repro.index.delta import (
    document_from_json,
    document_to_json,
    node_to_json,
)
from repro.index.sharding import (
    MANIFEST_NAME,
    build_sharded_snapshot,
    load_manifest,
)
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.wal import WalRecord
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument
from repro.xmltree.node import XMLNode


def el(label, *children, text=""):
    node = XMLNode(label, text=text)
    for child in children:
        node.add_child(child)
    return node


def book(title, author):
    return el(
        "book", el("title", text=title), el("author", text=author)
    )


def base_document():
    root = el(
        "bib",
        book("database systems", "codd"),
        book("xml keyword search", "lu"),
        book("valid spelling suggestion", "chen"),
    )
    return XMLDocument(root, name="swap-test")


NEW_BOOK = WalRecord(
    op="add", dewey=(1,),
    subtree=node_to_json(book("zanzibar consistency", "pat")),
)

#: Misspelling whose answer flips from empty to non-empty on update.
NEW_QUERY = "zanziber"


def answers(suggestions):
    return [dataclasses.astuple(s) for s in suggestions]


@pytest.fixture
def snapshot(tmp_path):
    document = base_document()
    path = str(tmp_path / "serve.xcs3")
    build_snapshot(build_corpus_index(document), path)
    return path, document


@pytest.fixture
def service(snapshot):
    path, _ = snapshot
    with SuggestionService(
        load_snapshot(path), config=XCleanConfig(max_errors=2)
    ) as svc:
        yield svc


class TestServiceLiveUpdates:
    def test_requires_enablement(self, service):
        with pytest.raises(ConfigurationError):
            service.apply_updates([NEW_BOOK])
        with pytest.raises(ConfigurationError):
            service.compact()

    def test_requires_snapshot_backed_corpus(self):
        svc = SuggestionService(
            build_corpus_index(base_document()),
            config=XCleanConfig(max_errors=2),
        )
        try:
            with pytest.raises(ConfigurationError):
                svc.enable_live_updates(base_document())
        finally:
            svc.close()

    def test_update_visible_within_one_request(self, snapshot, service):
        _, document = snapshot
        service.enable_live_updates(document)
        assert not service.suggest(NEW_QUERY, 5)
        applied = service.apply_updates([NEW_BOOK])
        assert applied == 1
        found = service.suggest(NEW_QUERY, 5)
        assert found and "zanzibar" in found[0].tokens[0]
        assert service.stats.updates_applied == 1
        assert service.stats.generation_swaps >= 1
        assert service.data_generation == 0  # not yet compacted

    def test_compact_swaps_to_fresh_generation(self, snapshot, service):
        _, document = snapshot
        service.enable_live_updates(document)
        service.apply_updates([NEW_BOOK])
        before = answers(service.suggest(NEW_QUERY, 5))
        assert service.compact() == 1
        assert service.data_generation == 1
        assert not service.live.delta.dirty
        # Serving moved off the overlay onto the snapshot; byte-same.
        assert answers(service.suggest(NEW_QUERY, 5)) == before
        assert getattr(service.corpus, "data_generation", None) == 1

    def test_idempotent_enable(self, snapshot, service):
        _, document = snapshot
        live = service.enable_live_updates(document)
        assert service.enable_live_updates() is live

    def test_recovery_installs_overlay(self, snapshot, service):
        path, document = snapshot
        service.enable_live_updates(document)
        service.apply_updates([NEW_BOOK])
        expected = answers(service.suggest(NEW_QUERY, 5))
        service.close()  # crash stand-in: WAL acked, never compacted
        with SuggestionService(
            load_snapshot(path), config=XCleanConfig(max_errors=2)
        ) as recovered:
            live = recovered.enable_live_updates()
            assert live.recovered_records == 1
            assert answers(recovered.suggest(NEW_QUERY, 5)) == expected

    def test_invalid_record_keeps_prefix(self, snapshot, service):
        _, document = snapshot
        service.enable_live_updates(document)
        bad = {"op": "delete", "dewey": [1, 99]}
        with pytest.raises(Exception):
            service.apply_updates([NEW_BOOK.as_dict(), bad])
        # The record before the bad one was acknowledged and serves.
        assert service.suggest(NEW_QUERY, 5)
        assert service.stats.updates_applied == 1

    def test_malformed_payload_never_acknowledged(self, snapshot, service):
        """A subtree that cannot parse must be rejected *before* the
        fsync-ack — otherwise WAL replay would brick every reopen."""
        path, document = snapshot
        service.enable_live_updates(document)
        poison = {
            "op": "add", "dewey": [1],
            "subtree": {"label": "book", "children": [{"text": "x"}]},
        }
        with pytest.raises(Exception):
            service.apply_updates([poison])
        assert service.live.acked_records == 0
        service.close()
        # Reopen from disk: recovery must not crash on a poison record.
        with SuggestionService(
            load_snapshot(path), config=XCleanConfig(max_errors=2)
        ) as recovered:
            live = recovered.enable_live_updates()
            assert live.recovered_records == 0

    def test_finished_recovery_installs_fresh_base(self, snapshot):
        """Crash window 1 (live source ahead, snapshot build died):
        the open finishes the fold — and the service must *serve* the
        folded generation, not the stale snapshot it loaded."""
        from repro.index.compaction import LiveIndexManager

        path, document = snapshot
        with LiveIndexManager(path, document=document) as live:
            live.apply([NEW_BOOK])
            live._write_live_source(live.document, live.generation + 1)
        stale = load_snapshot(path)
        assert stale.data_generation == 0
        with SuggestionService(
            stale, config=XCleanConfig(max_errors=2)
        ) as service:
            live = service.enable_live_updates()
            assert live.generation == 1
            assert live.recovered_records == 0
            assert not live.delta.dirty
            # data_generation and the serving corpus must agree.
            assert service.data_generation == 1
            assert getattr(service.corpus, "data_generation", None) == 1
            found = service.suggest(NEW_QUERY, 5)
            assert found and "zanzibar" in found[0].tokens[0]


class TestCacheEpochs:
    """A swap must make every pre-swap cache entry unreachable."""

    def test_result_cache_never_crosses_a_swap(self, snapshot, service):
        query = "databse systms"
        service.suggest(query, 5)
        service.suggest(query, 5)
        assert service.stats.result_cache_hits == 1
        service.swap_snapshot()  # same path, new generation epoch
        service.suggest(query, 5)
        assert service.stats.result_cache_hits == 1
        assert service.stats.result_cache_misses == 2

    def test_merged_columns_memo_is_generation_keyed(self):
        corpus = build_corpus_index(base_document())
        corpus.merged_list(("database", "databases"))
        corpus.merged_list(("database", "databases"))
        assert corpus.merged_cache_hits == 1
        corpus.bump_generation()
        corpus.merged_list(("database", "databases"))
        assert corpus.merged_cache_hits == 1
        assert corpus.merged_cache_misses == 2
        # Packed flavour too.
        corpus.merged_list_packed(("database",))
        corpus.bump_generation()
        corpus.merged_list_packed(("database",))
        assert corpus.merged_cache_misses == 4

    def test_result_type_cache_is_generation_keyed(self):
        corpus = build_corpus_index(
            XMLDocument(paper_example_tree())
        )
        finder = ResultTypeFinder(
            corpus, ResultTypeConfig(reduction=0.8, min_depth=2)
        )
        first = finder.find(("trie", "icde"))
        assert finder.find(("trie", "icde")) == first
        assert finder.cache_hits == 1
        corpus.bump_generation()
        assert finder.find(("trie", "icde")) == first
        assert finder.cache_hits == 1
        assert finder.cache_misses == 2

    def test_suggester_rebuilt_on_install(self, snapshot, service):
        _, document = snapshot
        before = service.suggester
        service.enable_live_updates(document)
        service.apply_updates([NEW_BOOK])
        assert service.suggester is not before
        assert service.suggester.corpus is service.corpus


class TestInflightAcrossSwap:
    """Queries racing a swap: zero drops, no mixed-generation answers."""

    QUERY = NEW_QUERY

    def hammer(self, service, stop, errors, observed):
        while not stop.is_set():
            try:
                observed.append(
                    tuple(answers(service.suggest(self.QUERY, 5)))
                )
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                errors.append(exc)
                return

    def run_race(self, service, mutate):
        stop = threading.Event()
        errors: list = []
        observed: list = []
        threads = [
            threading.Thread(
                target=self.hammer,
                args=(service, stop, errors, observed),
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            mutate()
        finally:
            stop.set()
            for thread in threads:
                thread.join(30.0)
        assert not errors, errors
        return observed

    def expected_sets(self, document):
        config = XCleanConfig(max_errors=2)
        before = build_corpus_index(document)
        applied = document_from_json(document_to_json(document))
        from repro.index.delta import apply_record

        apply_record(applied, NEW_BOOK)
        after = build_corpus_index(applied)
        return {
            tuple(
                answers(
                    XCleanSuggester(c, config=config).suggest(
                        self.QUERY, 5
                    )
                )
            )
            for c in (before, after)
        }

    def test_single_service_swap_storm(self, snapshot, service):
        _, document = snapshot
        service.enable_live_updates(document)
        legal = self.expected_sets(document)

        def mutate():
            service.apply_updates([NEW_BOOK])
            service.compact()
            service.swap_snapshot()

        observed = self.run_race(service, mutate)
        assert observed, "query stream never completed a request"
        illegal = [o for o in observed if o not in legal]
        assert not illegal, illegal[:3]
        # The mutation really swapped: post-update answers appeared.
        assert observed[-1] != ()

    def test_sharded_service_swap_storm(self, tmp_path):
        document = base_document()
        directory = str(tmp_path / "shards")
        build_sharded_snapshot(
            build_corpus_index(document), directory, shards=2
        )
        manifest = load_manifest(
            os.path.join(directory, MANIFEST_NAME)
        )
        legal = self.expected_sets(document)
        with ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=2)
        ) as service:
            service.enable_live_updates(document)

            def mutate():
                service.apply_updates([NEW_BOOK])

            observed = self.run_race(service, mutate)
            assert not [o for o in observed if o not in legal]
            assert service.stats.updates_applied == 1
            assert service.stats.generation_swaps == 1
            assert service.data_generation == 1
            found = service.suggest(self.QUERY, 5)
            assert found and "zanzibar" in found[0].tokens[0]


class TestShardedLiveUpdates:
    def test_in_memory_manifest_rejected(self, tmp_path):
        # A manifest that never touched disk has no directory to
        # anchor the WAL in.
        document = base_document()
        built = build_sharded_snapshot(
            build_corpus_index(document), str(tmp_path / "s"), shards=1
        )
        with ShardedSuggestionService(
            built, config=XCleanConfig(max_errors=2)
        ) as service:
            service.manifest = dataclasses.replace(built, directory="")
            with pytest.raises(ConfigurationError):
                service.enable_live_updates(document)

    def test_recovery_folds_on_enable(self, tmp_path):
        from repro.index.compaction import LiveIndexManager

        document = base_document()
        directory = str(tmp_path / "shards")
        build_sharded_snapshot(
            build_corpus_index(document), directory, shards=2
        )
        # Ack an update out-of-band, then "crash" before compaction.
        with LiveIndexManager(directory, document=document) as live:
            live.apply([NEW_BOOK])
        manifest = load_manifest(
            os.path.join(directory, MANIFEST_NAME)
        )
        with ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=2)
        ) as service:
            service.enable_live_updates()
            assert service.data_generation == 1
            found = service.suggest(NEW_QUERY, 5)
            assert found and "zanzibar" in found[0].tokens[0]

    def test_finished_recovery_swaps_manifest(self, tmp_path):
        """Crash window 1: the open finishes the interrupted fold, and
        the service must swap onto the folded manifest, not keep
        serving the stale shard set it loaded."""
        from repro.index.compaction import LiveIndexManager

        document = base_document()
        directory = str(tmp_path / "shards-window1")
        build_sharded_snapshot(
            build_corpus_index(document), directory, shards=2
        )
        with LiveIndexManager(directory, document=document) as live:
            live.apply([NEW_BOOK])
            live._write_live_source(live.document, live.generation + 1)
        manifest = load_manifest(
            os.path.join(directory, MANIFEST_NAME)
        )
        assert manifest.generation == 0
        with ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=2)
        ) as service:
            live = service.enable_live_updates()
            assert live.recovered_records == 0
            assert service.data_generation == 1
            assert service.manifest.generation == 1
            found = service.suggest(NEW_QUERY, 5)
            assert found and "zanzibar" in found[0].tokens[0]

    def test_acked_but_unfolded_records_survive_failed_fold(
        self, tmp_path, monkeypatch
    ):
        """A record that was fsync-acked but failed to fold must not
        be counted as applied, and compaction must not reset the WAL
        over it — replay on reopen recovers every acked record."""
        import repro.index.compaction as compaction_module
        from repro.exceptions import UpdateError
        from repro.index.compaction import LiveIndexManager

        second = WalRecord(
            op="add", dewey=(1,),
            subtree=node_to_json(book("paxos consensus", "lamport")),
        )
        document = base_document()
        directory = str(tmp_path / "shards-fold")
        build_sharded_snapshot(
            build_corpus_index(document), directory, shards=2
        )
        manifest = load_manifest(
            os.path.join(directory, MANIFEST_NAME)
        )
        with ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=2)
        ) as service:
            service.enable_live_updates(document)
            real_apply = compaction_module.apply_record
            calls = {"n": 0}

            def flaky_apply(doc, record):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise UpdateError("injected fold failure")
                return real_apply(doc, record)

            monkeypatch.setattr(
                compaction_module, "apply_record", flaky_apply
            )
            with pytest.raises(UpdateError):
                service.apply_updates([NEW_BOOK, second])
            monkeypatch.undo()
            # Both records were acked; only the first reached the
            # document.  Nothing may be compacted (that would discard
            # the second) and the stat counts only real folds.
            assert service.live.acked_records == 2
            assert service.live.applied_records == 1
            assert service.stats.updates_applied == 0
            assert service.data_generation == 0
        # Replay on reopen recovers *both* acknowledged records.
        with LiveIndexManager(directory) as recovered:
            assert recovered.recovered_records == 2
            assert recovered.document.node_at((1, 4)) is not None
            assert recovered.document.node_at((1, 5)) is not None
