"""End-to-end checks of the paper's worked Examples 2–5."""

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.error_model import ExponentialErrorModel
from repro.core.language_model import DirichletLanguageModel
from repro.fastss.generator import VariantGenerator
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture(scope="module")
def suggester(corpus):
    return XCleanSuggester(
        corpus,
        config=XCleanConfig(
            max_errors=1, gamma=None, min_depth=2, reduction=0.8
        ),
    )


class TestExample2VariantSets:
    def test_var_tree(self, corpus):
        generator = VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=1
        )
        assert set(generator.variant_tokens("tree")) == {
            "tree",
            "trees",
            "trie",
        }

    def test_var_icdt(self, corpus):
        generator = VariantGenerator(
            corpus.vocabulary.tokens(), max_errors=1
        )
        assert set(generator.variant_tokens("icdt")) == {"icdt", "icde"}


class TestExample4Score:
    """P(C|Q,T) of C = "trie icde" for Q = "tree icde": the average of
    the two /a/d entities' language-model products, times P(Q|C)."""

    def test_score_matches_manual_computation(self, corpus, suggester):
        scores = suggester.score_all("tree icde")
        candidate = ("trie", "icde")
        assert candidate in scores

        lm = DirichletLanguageModel(corpus.vocabulary, suggester.config.mu)
        # Entity 1.3: one trie, one icde, |D| = 3.
        # Entity 1.4: one trie, one icde, |D| = 2.
        mass_13 = lm.probability("trie", 1, 3) * lm.probability(
            "icde", 1, 3
        )
        mass_14 = lm.probability("trie", 1, 2) * lm.probability(
            "icde", 1, 2
        )

        error_model = ExponentialErrorModel(suggester.config.beta)
        generator = suggester.generator
        w_trie = error_model.variant_weights(
            "tree", generator.variants("tree", 1)
        )["trie"]
        w_icde = error_model.variant_weights(
            "icde", generator.variants("icde", 1)
        )["icde"]

        expected = w_trie * w_icde * (mass_13 + mass_14) / 2
        assert scores[candidate] == pytest.approx(expected, rel=1e-12)

    def test_entity_roots_are_13_and_14(self, corpus, suggester):
        # Cross-check via the accumulator: two entities scored for the
        # /a/d candidates in total across groups.
        suggester.suggest("trie icde")
        # (trie, icde) -> entities 1.3 and 1.4; (tree, icde) -> 1.2;
        # (trie, icdt) does not arise for this query (icdt not a variant
        # of icde? it is: ed(icde, icdt)=1).
        stats = suggester.last_stats
        assert stats.entities_scored >= 3


class TestExample5CandidateEnumeration:
    def test_group_12_candidates(self, corpus):
        """Subtree 1.2 yields exactly C1 = trie icde, C2 = tree icde."""
        suggester = XCleanSuggester(
            corpus,
            config=XCleanConfig(max_errors=1, gamma=None, min_depth=2),
        )
        scores = suggester.score_all("tree icdt")
        # Full run: candidates with non-empty entities are exactly
        # these three (C2 from group 1.2; C1 from 1.3/1.4; C3 from 1.3).
        assert set(scores) == {
            ("tree", "icde"),
            ("trie", "icde"),
            ("trie", "icdt"),
        }

    def test_best_suggestion_is_reasonable(self, corpus, suggester):
        top = suggester.suggest("tree icdt", k=3)
        assert top[0].tokens in {("trie", "icdt"), ("trie", "icde")}
