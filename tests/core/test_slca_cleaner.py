"""Tests for the SLCA-semantics cleaner (Section VI-B)."""

import pytest

from repro.core.config import XCleanConfig
from repro.core.slca_cleaner import SLCACleanSuggester
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture(scope="module")
def suggester(corpus):
    return SLCACleanSuggester(
        corpus, config=XCleanConfig(max_errors=1, gamma=None, min_depth=2)
    )


class TestSuggest:
    def test_returns_suggestions(self, suggester):
        suggestions = suggester.suggest("tree icdt")
        assert suggestions
        assert all(s.result_type == "SLCA" for s in suggestions)

    def test_clean_query_ranks_itself_first(self, suggester):
        top = suggester.suggest("trie icde", k=1)[0]
        assert top.tokens == ("trie", "icde")

    def test_scores_descending(self, suggester):
        scores = [s.score for s in suggester.suggest("tree icdt")]
        assert scores == sorted(scores, reverse=True)

    def test_empty_query_raises(self, suggester):
        with pytest.raises(QueryError):
            suggester.suggest("the of")

    def test_unmatchable_keyword(self, suggester):
        assert suggester.suggest("tree qqqqqqqq") == []


class TestEntitySemantics:
    def test_candidates_require_cooccurrence(self, suggester):
        """(trees, icde) only co-occur through the root; the min-depth
        threshold removes such candidates, as in the node-type mode."""
        scores = suggester.score_all("tree icdt")
        assert ("trees", "icde") not in scores
        assert ("trees", "icdt") not in scores

    def test_same_candidates_as_node_type_on_paper_tree(self, suggester):
        scores = suggester.score_all("tree icdt")
        assert set(scores) == {
            ("tree", "icde"),
            ("trie", "icde"),
            ("trie", "icdt"),
        }

    def test_entity_count_normalization(self, corpus):
        """(trie, icde) has SLCA entities 1.2, 1.3, 1.4: its mass must be
        averaged over 3 entities."""
        suggester = SLCACleanSuggester(
            corpus,
            config=XCleanConfig(max_errors=1, gamma=None, min_depth=2),
        )
        suggester.score_all("trie icde")
        assert suggester.last_stats.entities_scored >= 3

    def test_single_keyword_entities_are_leaves(self, suggester):
        # For a single keyword the SLCAs are the occurrence nodes.
        suggestions = suggester.suggest("trie")
        assert suggestions
        assert suggestions[0].tokens in {("trie",), ("tree",)}


class TestStats:
    def test_group_machinery_used(self, suggester):
        suggester.suggest("tree icdt")
        stats = suggester.last_stats
        assert stats.groups_processed == 3
        assert stats.postings_read == 8
        assert stats.postings_skipped == 1
