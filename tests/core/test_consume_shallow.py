"""Regression tests for XCleanSuggester._consume_shallow.

The seed implementation silently did nothing when no merged-list head
equaled the anchor; since the outer loop of Algorithm 1 recomputes the
same anchor from unchanged heads, that would spin forever.  The fix
consumes the maximal head whenever no exact match exists, guaranteeing
progress.
"""

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.index.corpus import build_corpus_index
from repro.index.inverted import InvertedList, PackedInvertedList
from repro.index.merged_list import MergedList, PackedMergedList
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.dewey_packed import DeweyPacker
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def suggester():
    corpus = build_corpus_index(XMLDocument(paper_example_tree()))
    return XCleanSuggester(corpus, config=XCleanConfig(max_errors=1))


def tuple_lists():
    return [
        MergedList([InvertedList("a", [((1, 1), 0, 1)])]),
        MergedList([InvertedList("b", [((1, 3), 0, 1), ((1, 4), 0, 1)])]),
    ]


class TestTupleEngine:
    def test_matching_head_is_consumed(self, suggester):
        merged = tuple_lists()
        suggester._consume_shallow(merged, (1, 3))
        assert merged[1].head_dewey() == (1, 4)
        assert merged[0].head_dewey() == (1, 1)

    def test_stale_anchor_still_makes_progress(self, suggester):
        # Anchor matches no head (the hang scenario): the maximal head
        # must be consumed so the outer loop sees new state.
        merged = tuple_lists()
        suggester._consume_shallow(merged, (9, 9))
        heads = [ml.head_dewey() for ml in merged]
        assert heads == [(1, 1), (1, 4)]

    def test_all_exhausted_is_a_noop(self, suggester):
        merged = [MergedList([])]
        suggester._consume_shallow(merged, (1,))  # must not raise
        assert merged[0].head_dewey() is None


class TestPackedEngine:
    def test_stale_anchor_still_makes_progress(self, suggester):
        packer = DeweyPacker(max_depth=3, component_bits=4)
        merged = [
            PackedMergedList(
                [
                    PackedInvertedList.from_inverted(
                        InvertedList("a", [((1, 1), 0, 1)]), packer
                    )
                ]
            ),
            PackedMergedList(
                [
                    PackedInvertedList.from_inverted(
                        InvertedList(
                            "b", [((1, 3), 0, 1), ((1, 4), 0, 1)]
                        ),
                        packer,
                    )
                ]
            ),
        ]
        suggester._consume_shallow_packed(merged, packer.pack((9, 9)))
        assert merged[0].head_key() == packer.pack((1, 1))
        assert merged[1].head_key() == packer.pack((1, 4))

    def test_matching_head_preferred_over_maximal(self, suggester):
        packer = DeweyPacker(max_depth=3, component_bits=4)
        lists = [
            PackedMergedList(
                [
                    PackedInvertedList.from_inverted(
                        InvertedList("a", [((1, 1), 0, 1)]), packer
                    )
                ]
            ),
            PackedMergedList(
                [
                    PackedInvertedList.from_inverted(
                        InvertedList("b", [((1, 3), 0, 1)]), packer
                    )
                ]
            ),
        ]
        suggester._consume_shallow_packed(lists, packer.pack((1, 1)))
        assert lists[0].head_key() is None
        assert lists[1].head_key() == packer.pack((1, 3))


class TestEndToEnd:
    def test_deep_min_depth_terminates(self):
        # With min_depth above every leaf, every anchor takes the
        # shallow path; the query must still terminate and return
        # nothing rather than loop.
        corpus = build_corpus_index(XMLDocument(paper_example_tree()))
        for engine in ("packed", "tuple"):
            suggester = XCleanSuggester(
                corpus,
                config=XCleanConfig(
                    max_errors=1, min_depth=30, engine=engine
                ),
            )
            assert suggester.suggest("tree icdt", 5) == []
