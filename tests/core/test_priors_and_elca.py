"""Tests for the framework extensions: entity priors and ELCA semantics."""

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.naive import NaiveCleaner
from repro.core.slca_cleaner import ELCACleanSuggester, SLCACleanSuggester
from repro.exceptions import ConfigurationError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import build_tree, paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


class TestLengthPrior:
    def test_prior_validation(self):
        with pytest.raises(ConfigurationError):
            XCleanConfig(prior="nope")

    def test_uniform_is_default(self):
        assert XCleanConfig().prior == "uniform"

    def test_path_token_totals_consistent(self, corpus):
        totals = corpus.path_token_totals()
        table = corpus.path_table
        # Root total equals the whole collection size.
        root_pid = table.id_of(("a",))
        assert totals[root_pid] == corpus.vocabulary.total_tokens
        # /a/d entities 1.3 (3 tokens) + 1.4 (2 tokens) = 5.
        assert totals[table.id_of(("a", "d"))] == 5

    def test_totals_cached(self, corpus):
        assert corpus.path_token_totals() is corpus.path_token_totals()

    def test_matches_naive_under_length_prior(self, corpus):
        config = XCleanConfig(max_errors=1, gamma=None, prior="length")
        fast = XCleanSuggester(corpus, config=config)
        naive = NaiveCleaner(corpus, config=config)
        fast_scores = fast.score_all("tree icdt")
        naive_scores = {
            c: s for c, s in naive.score_all("tree icdt").items() if s > 0
        }
        assert set(fast_scores) == set(naive_scores)
        for c, s in fast_scores.items():
            assert s == pytest.approx(naive_scores[c], rel=1e-12)

    def test_length_prior_changes_scores(self, corpus):
        uniform = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        ).score_all("tree icdt")
        weighted = XCleanSuggester(
            corpus,
            config=XCleanConfig(max_errors=1, gamma=None, prior="length"),
        ).score_all("tree icdt")
        assert set(uniform) == set(weighted)
        assert any(
            uniform[c] != pytest.approx(weighted[c]) for c in uniform
        )

    def test_length_prior_favors_longer_entities(self):
        # Two result types, same counts; the candidate living in the
        # longer entities gains relative to the uniform prior.
        doc = XMLDocument(
            build_tree(
                (
                    "db",
                    [
                        ("short", [("t", "tree icde")]),
                        (
                            "long",
                            [
                                ("t", "trie icde keyword search"
                                      " engine ranking")
                            ],
                        ),
                    ],
                )
            )
        )
        corpus = build_corpus_index(doc)
        uniform = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        ).score_all("tree icde")
        weighted = XCleanSuggester(
            corpus,
            config=XCleanConfig(max_errors=1, gamma=None, prior="length"),
        ).score_all("tree icde")
        ratio_uniform = uniform[("trie", "icde")] / uniform[
            ("tree", "icde")
        ]
        ratio_weighted = weighted[("trie", "icde")] / weighted[
            ("tree", "icde")
        ]
        assert ratio_weighted > ratio_uniform


class TestELCACleaner:
    def test_returns_elca_label(self, corpus):
        suggester = ELCACleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        suggestions = suggester.suggest("tree icdt")
        assert suggestions
        assert all(s.result_type == "ELCA" for s in suggestions)

    def test_elca_counts_at_least_slca_entities(self, corpus):
        config = XCleanConfig(max_errors=1, gamma=None)
        slca_suggester = SLCACleanSuggester(corpus, config=config)
        elca_suggester = ELCACleanSuggester(corpus, config=config)
        slca_suggester.score_all("trie icde")
        elca_suggester.score_all("trie icde")
        assert (
            elca_suggester.last_stats.entities_scored
            >= slca_suggester.last_stats.entities_scored
        )

    def test_clean_query_still_first(self, corpus):
        suggester = ELCACleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        top = suggester.suggest("trie icde", k=1)[0]
        assert top.tokens == ("trie", "icde")
