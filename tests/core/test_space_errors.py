"""Tests for the space insertion/deletion extension (Section VI-A)."""

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.space_errors import (
    SpaceAwareSuggester,
    expand_with_space_edits,
)
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.index.vocabulary import Vocabulary
from repro.xmltree.document import XMLDocument


@pytest.fixture
def vocab():
    v = Vocabulary()
    for token in ("power", "point", "powerpoint", "data", "mining"):
        v.add_occurrence(token)
    return v


class TestExpansion:
    def test_original_always_included(self, vocab):
        variants = expand_with_space_edits(["data", "mining"], vocab, 1)
        assert variants[0].keywords == ("data", "mining")
        assert variants[0].changes == 0

    def test_merge_adjacent(self, vocab):
        variants = expand_with_space_edits(["power", "point"], vocab, 1)
        merged = [v for v in variants if v.keywords == ("powerpoint",)]
        assert merged and merged[0].changes == 1

    def test_split_keyword(self, vocab):
        variants = expand_with_space_edits(["powerpoint"], vocab, 1)
        split = [v for v in variants if v.keywords == ("power", "point")]
        assert split and split[0].changes == 1

    def test_invalid_merges_discarded(self, vocab):
        variants = expand_with_space_edits(["data", "point"], vocab, 1)
        # 'datapoint' is not in the vocabulary.
        assert all(v.keywords != ("datapoint",) for v in variants)

    def test_zero_changes(self, vocab):
        variants = expand_with_space_edits(["power", "point"], vocab, 0)
        assert len(variants) == 1

    def test_two_changes_chain(self, vocab):
        # split then merge back is deduplicated at the smaller count.
        variants = expand_with_space_edits(["powerpoint"], vocab, 2)
        original = [v for v in variants if v.keywords == ("powerpoint",)]
        assert original[0].changes == 0

    def test_negative_changes_rejected(self, vocab):
        with pytest.raises(QueryError):
            expand_with_space_edits(["data"], vocab, -1)

    def test_ordering_by_changes(self, vocab):
        variants = expand_with_space_edits(["power", "point"], vocab, 1)
        counts = [v.changes for v in variants]
        assert counts == sorted(counts)


class TestSpaceAwareSuggester:
    @pytest.fixture
    def corpus(self):
        return build_corpus_index(
            XMLDocument.from_string(
                "<db>"
                "<doc><body>powerpoint slides template</body></doc>"
                "<doc><body>power outage report</body></doc>"
                "<doc><body>point cloud rendering</body></doc>"
                "</db>"
            )
        )

    def test_split_query_finds_merged_token(self, corpus):
        base = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        wrapped = SpaceAwareSuggester(base, max_changes=1)
        tokens = {s.tokens for s in wrapped.suggest("power point")}
        assert ("powerpoint",) in tokens

    def test_penalty_applied(self, corpus):
        base = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        wrapped = SpaceAwareSuggester(base, max_changes=1, beta=5.0)
        suggestions = wrapped.suggest("power outage")
        # The unchanged interpretation must beat space-edited ones.
        assert suggestions[0].tokens == ("power", "outage")

    def test_empty_query_raises(self, corpus):
        base = XCleanSuggester(corpus)
        with pytest.raises(QueryError):
            SpaceAwareSuggester(base).suggest("of")
