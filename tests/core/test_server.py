"""Tests for the batch serving layer (SuggestionService)."""

import time

import pytest

from repro.core import server as server_module
from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture()
def service(corpus):
    return SuggestionService(
        corpus, config=XCleanConfig(max_errors=1)
    )


def make_service(corpus, **kwargs):
    return SuggestionService(
        corpus, config=XCleanConfig(max_errors=1), **kwargs
    )


# ----------------------------------------------------------------------
# Worker stand-ins for the resilience tests.  Module level so they
# pickle by reference; the pool starts lazily *after* the monkeypatch,
# so the fork inherits the patched module attribute and the parent
# submits the stand-in.
# ----------------------------------------------------------------------

_real_worker_suggest = server_module._worker_suggest


def _sleepy_worker(task):
    """Hang on one marked query, answer everything else normally."""
    query = task[0]
    if "databas" in query:
        time.sleep(1.0)
    return _real_worker_suggest(task)


def _unanswerable_worker(task):
    """Simulate a worker that fails every query (QueryError path)."""
    return None


class TestResultCache:
    def test_repeat_query_hits_cache(self, service):
        first = service.suggest("tree icdt", 5)
        second = service.suggest("tree icdt", 5)
        assert [s.tokens for s in first] == [s.tokens for s in second]
        assert service.stats.result_cache_hits == 1
        assert service.stats.result_cache_misses == 1

    def test_cleaning_stats_report_cache_counters(self):
        # Fresh corpus: the merged-list memo lives on the corpus, and a
        # shared fixture would arrive pre-warmed from earlier tests.
        service = SuggestionService(
            build_corpus_index(XMLDocument(paper_example_tree())),
            config=XCleanConfig(max_errors=1),
        )
        service.suggest("tree icdt", 5)
        miss_stats = service.last_stats
        assert miss_stats.result_cache_misses == 1
        assert miss_stats.result_cache_hits == 0
        # The miss ran the algorithm, which populated the variant memo.
        assert miss_stats.variant_cache_misses > 0
        assert miss_stats.merged_cache_misses > 0

        service.suggest("tree icdt", 5)
        hit_stats = service.last_stats
        assert hit_stats.result_cache_hits == 1
        assert hit_stats.groups_processed == 0

        # A re-run of the same keywords hits the variant + merged memos.
        service.suggest("tree icdt icdt", 5)
        assert service.last_stats.variant_cache_hits > 0
        assert service.last_stats.merged_cache_hits > 0

    def test_normalized_queries_share_slot(self, service):
        service.suggest("Tree   ICDT", 5)
        service.suggest("tree icdt", 5)
        assert service.stats.result_cache_hits == 1

    def test_distinct_k_distinct_slot(self, service):
        service.suggest("tree icdt", 5)
        service.suggest("tree icdt", 3)
        assert service.stats.result_cache_hits == 0

    def test_lru_evicts_oldest(self, corpus):
        service = SuggestionService(
            corpus,
            config=XCleanConfig(max_errors=1),
            result_cache_size=1,
        )
        service.suggest("tree icdt", 5)
        service.suggest("databas", 5)  # evicts "tree icdt"
        service.suggest("tree icdt", 5)
        assert service.stats.result_cache_hits == 0
        assert service.stats.result_cache_misses == 3

    def test_unusable_query_raises_like_suggester(self, service):
        with pytest.raises(QueryError):
            service.suggest("!!", 5)

    def test_cache_keyed_on_index_generation(self):
        # Entries are keyed on (index identity, generation): bumping
        # the corpus generation must invalidate every cached answer.
        service = SuggestionService(
            build_corpus_index(XMLDocument(paper_example_tree())),
            config=XCleanConfig(max_errors=1),
        )
        first = service.suggest("tree icdt", 5)
        service.suggest("tree icdt", 5)
        assert service.stats.result_cache_hits == 1
        service.corpus.bump_generation()
        again = service.suggest("tree icdt", 5)
        assert service.stats.result_cache_hits == 1
        assert service.stats.result_cache_misses == 2
        assert [s.tokens for s in first] == [s.tokens for s in again]


class TestBatch:
    def test_batch_matches_singles(self, corpus):
        service = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        reference = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        queries = ["tree icdt", "databas", "tree icdt"]
        batch = service.suggest_batch(queries, 5)
        singles = [reference.suggest(q, 5) for q in queries]
        assert [
            [(s.tokens, s.result_type) for s in answer]
            for answer in batch
        ] == [
            [(s.tokens, s.result_type) for s in answer]
            for answer in singles
        ]
        assert service.stats.result_cache_hits == 1

    def test_batch_swallows_unusable_queries(self, service):
        batch = service.suggest_batch(["tree icdt", "!!", ""], 5)
        assert len(batch) == 3
        assert batch[1] == [] and batch[2] == []
        assert service.stats.unanswerable == 2

    def test_parallel_batch_matches_serial(self, corpus):
        queries = ["tree icdt", "databas", "tree icdt", "!!"]
        serial = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        ).suggest_batch(queries, 5)
        parallel_service = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        parallel = parallel_service.suggest_batch(
            queries, 5, workers=2
        )
        assert [
            [(s.tokens, s.result_type) for s in answer]
            for answer in serial
        ] == [
            [(s.tokens, s.result_type) for s in answer]
            for answer in parallel
        ]
        for left, right in zip(serial, parallel):
            for a, b in zip(left, right):
                assert a.score == pytest.approx(b.score, rel=1e-9)
        # 3 usable queries, one of them a duplicate → 1 in-batch hit.
        assert parallel_service.stats.result_cache_hits == 1
        assert parallel_service.stats.result_cache_misses == 2
        assert parallel_service.stats.unanswerable == 1

    def test_parallel_batch_reuses_cache(self, corpus):
        service = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        service.suggest("tree icdt", 5)
        batch = service.suggest_batch(["tree icdt"], 5, workers=2)
        assert batch[0]
        assert service.stats.result_cache_hits == 1


class TestSerialParallelEquivalence:
    """Both batch paths keep the same stats and last_stats contract."""

    #: Fields of CleaningStats that are algorithmic — identical no
    #: matter which process ran the query.  (Memo counters like
    #: variant_cache_* depend on process-local warm-up and are
    #: deliberately excluded.)
    FIELDS = (
        "keywords",
        "space_size",
        "groups_processed",
        "candidates_evaluated",
        "entities_scored",
        "postings_read",
        "postings_skipped",
        "result_types_computed",
        "result_type_cache_misses",
        "result_cache_hits",
        "result_cache_misses",
    )

    def test_service_stats_match(self, corpus):
        queries = ["databas", "!!", "tree icdt", "tree icdt"]
        serial = make_service(corpus)
        serial_out = serial.suggest_batch(queries, 5)
        with make_service(corpus) as par:
            par_out = par.suggest_batch(queries, 5, workers=2)
        assert [
            [(s.tokens, s.result_type) for s in answer]
            for answer in serial_out
        ] == [
            [(s.tokens, s.result_type) for s in answer]
            for answer in par_out
        ]
        for name in (
            "queries_served",
            "result_cache_hits",
            "result_cache_misses",
            "unanswerable",
        ):
            assert getattr(par.stats, name) == getattr(
                serial.stats, name
            ), name
        # Last served query is an in-batch duplicate: both paths must
        # report it as a pure cache hit.
        assert serial.last_stats.result_cache_hits == 1
        assert par.last_stats.result_cache_hits == 1
        assert par.last_stats.groups_processed == 0

    def test_fresh_last_stats_match(self, corpus):
        # Batch ends on a fresh query: last_stats must carry the
        # worker's algorithm counters, exactly as the serial path does.
        queries = ["databas", "tree icdt"]
        serial = make_service(corpus)
        serial.suggest_batch(queries, 5)
        with make_service(corpus) as par:
            par.suggest_batch(queries, 5, workers=2)
        for name in self.FIELDS:
            assert getattr(par.last_stats, name) == getattr(
                serial.last_stats, name
            ), name
        assert par.last_stats.result_cache_misses == 1
        assert par.last_stats.groups_processed > 0


class TestPoolLifecycle:
    def test_pool_persists_across_batches(self, corpus):
        with make_service(corpus) as service:
            service.suggest_batch(["tree icdt"], 5, workers=2)
            pool = service._pool
            assert pool is not None
            service.suggest_batch(["databas"], 5, workers=2)
            assert service._pool is pool
            assert service.stats.pool_starts == 1
            assert service.stats.pool_recycles == 0
            assert service.stats.degraded_queries == 0

    def test_pool_recycles_after_budget(self, corpus):
        with make_service(corpus, worker_recycle_after=1) as service:
            first = service.suggest_batch(["tree icdt"], 5, workers=2)
            second = service.suggest_batch(["tree icde"], 5, workers=2)
            assert first[0] and second[0]
            assert service.stats.result_cache_misses == 2
            assert service.stats.pool_starts == 2
            assert service.stats.pool_recycles == 1

    def test_closed_service_degrades_in_process(self, corpus):
        service = make_service(corpus)
        service.close()
        service.close()  # idempotent
        batch = service.suggest_batch(["tree icdt"], 5, workers=2)
        assert batch[0]
        assert service.stats.pool_starts == 0
        assert service.stats.degraded_queries == 1

    def test_context_manager_shuts_pool(self, corpus):
        with make_service(corpus) as service:
            service.suggest_batch(["tree icdt"], 5, workers=2)
            assert service._pool is not None
        assert service._pool is None
        assert service._closed

    def test_service_default_workers_used_by_batch(self, corpus):
        with make_service(corpus, workers=2) as service:
            service.suggest_batch(["tree icdt"], 5)
            assert service.stats.pool_starts == 1


class TestResilience:
    def test_timeout_retries_once_then_degrades(
        self, corpus, monkeypatch
    ):
        monkeypatch.setattr(
            server_module, "_worker_suggest", _sleepy_worker
        )
        reference = make_service(corpus).suggest_batch(
            ["tree icdt", "databas"], 5
        )
        with make_service(corpus, worker_timeout=0.15) as service:
            batch = service.suggest_batch(
                ["tree icdt", "databas"], 5, workers=2
            )
        assert [
            [(s.tokens, s.result_type) for s in answer]
            for answer in batch
        ] == [
            [(s.tokens, s.result_type) for s in answer]
            for answer in reference
        ]
        # First wait timed out, the single retry timed out, then the
        # query was answered in-process and the suspect pool recycled.
        assert service.stats.worker_timeouts == 2
        assert service.stats.degraded_queries == 1
        assert service.stats.pool_recycles == 1

    def test_worker_failure_not_cached_as_empty(
        self, corpus, monkeypatch
    ):
        monkeypatch.setattr(
            server_module, "_worker_suggest", _unanswerable_worker
        )
        with make_service(corpus) as service:
            first = service.suggest_batch(["tree icdt"], 5, workers=2)
            second = service.suggest_batch(["tree icdt"], 5, workers=2)
        # A failed worker answer must never become a cached empty
        # result: the retry in the second batch is a fresh attempt,
        # not a cache hit.
        assert first == [[]] and second == [[]]
        assert service.stats.unanswerable == 2
        assert service.stats.result_cache_hits == 0


class TestResultTypeDeltas:
    def test_reported_per_query_not_cumulative(self, corpus):
        service = make_service(corpus)
        service.suggest("tree icdt", 5)
        first = service.last_stats
        assert first.result_types_computed > 0
        assert (
            first.result_types_computed
            == first.result_type_cache_misses
        )
        # Distinct k defeats the result cache, so the algorithm reruns
        # — but every candidate's type is already in the finder's LRU.
        service.suggest("tree icdt", 3)
        second = service.last_stats
        assert second.result_types_computed == 0
        assert second.result_type_cache_misses == 0
        assert second.result_type_cache_hits > 0


class TestServiceMetrics:
    def test_snapshot_has_stage_timers_and_counters(self, corpus):
        service = make_service(corpus)
        service.suggest("tree icdt", 5)
        data = service.metrics().as_dict()
        for stage in (
            "tokenize",
            "variant_gen",
            "merge",
            "score",
            "type_infer",
        ):
            assert data["stages"][stage]["count"] >= 1, stage
        assert data["counters"]["queries_total"] == 1
        assert data["counters"]["result_cache_misses_total"] == 1
        assert data["histograms"]["request_seconds"]["count"] == 1

    def test_prometheus_export(self, corpus):
        service = make_service(corpus)
        service.suggest("tree icdt", 5)
        service.suggest("tree icdt", 5)
        text = service.metrics().to_prometheus()
        assert "xclean_queries_total 2" in text
        assert "xclean_result_cache_hits_total 1" in text
        assert 'xclean_stage_seconds_bucket{stage="merge"' in text
        assert "# TYPE xclean_request_seconds histogram" in text

    def test_parallel_batch_counts_queries(self, corpus):
        with make_service(corpus) as service:
            service.suggest_batch(
                ["tree icdt", "tree icdt", "!!"], 5, workers=2
            )
        data = service.metrics().as_dict()
        assert data["counters"]["queries_total"] == 3
        assert data["counters"]["batches_total"] == 1
        assert data["counters"]["unanswerable_total"] == 1
        assert data["counters"]["pool_starts_total"] == 1
