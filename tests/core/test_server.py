"""Tests for the batch serving layer (SuggestionService)."""

import pytest

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture()
def service(corpus):
    return SuggestionService(
        corpus, config=XCleanConfig(max_errors=1)
    )


class TestResultCache:
    def test_repeat_query_hits_cache(self, service):
        first = service.suggest("tree icdt", 5)
        second = service.suggest("tree icdt", 5)
        assert [s.tokens for s in first] == [s.tokens for s in second]
        assert service.stats.result_cache_hits == 1
        assert service.stats.result_cache_misses == 1

    def test_cleaning_stats_report_cache_counters(self):
        # Fresh corpus: the merged-list memo lives on the corpus, and a
        # shared fixture would arrive pre-warmed from earlier tests.
        service = SuggestionService(
            build_corpus_index(XMLDocument(paper_example_tree())),
            config=XCleanConfig(max_errors=1),
        )
        service.suggest("tree icdt", 5)
        miss_stats = service.last_stats
        assert miss_stats.result_cache_misses == 1
        assert miss_stats.result_cache_hits == 0
        # The miss ran the algorithm, which populated the variant memo.
        assert miss_stats.variant_cache_misses > 0
        assert miss_stats.merged_cache_misses > 0

        service.suggest("tree icdt", 5)
        hit_stats = service.last_stats
        assert hit_stats.result_cache_hits == 1
        assert hit_stats.groups_processed == 0

        # A re-run of the same keywords hits the variant + merged memos.
        service.suggest("tree icdt icdt", 5)
        assert service.last_stats.variant_cache_hits > 0
        assert service.last_stats.merged_cache_hits > 0

    def test_normalized_queries_share_slot(self, service):
        service.suggest("Tree   ICDT", 5)
        service.suggest("tree icdt", 5)
        assert service.stats.result_cache_hits == 1

    def test_distinct_k_distinct_slot(self, service):
        service.suggest("tree icdt", 5)
        service.suggest("tree icdt", 3)
        assert service.stats.result_cache_hits == 0

    def test_lru_evicts_oldest(self, corpus):
        service = SuggestionService(
            corpus,
            config=XCleanConfig(max_errors=1),
            result_cache_size=1,
        )
        service.suggest("tree icdt", 5)
        service.suggest("databas", 5)  # evicts "tree icdt"
        service.suggest("tree icdt", 5)
        assert service.stats.result_cache_hits == 0
        assert service.stats.result_cache_misses == 3

    def test_unusable_query_raises_like_suggester(self, service):
        with pytest.raises(QueryError):
            service.suggest("!!", 5)


class TestBatch:
    def test_batch_matches_singles(self, corpus):
        service = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        reference = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        queries = ["tree icdt", "databas", "tree icdt"]
        batch = service.suggest_batch(queries, 5)
        singles = [reference.suggest(q, 5) for q in queries]
        assert [
            [(s.tokens, s.result_type) for s in answer]
            for answer in batch
        ] == [
            [(s.tokens, s.result_type) for s in answer]
            for answer in singles
        ]
        assert service.stats.result_cache_hits == 1

    def test_batch_swallows_unusable_queries(self, service):
        batch = service.suggest_batch(["tree icdt", "!!", ""], 5)
        assert len(batch) == 3
        assert batch[1] == [] and batch[2] == []
        assert service.stats.unanswerable == 2

    def test_parallel_batch_matches_serial(self, corpus):
        queries = ["tree icdt", "databas", "tree icdt", "!!"]
        serial = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        ).suggest_batch(queries, 5)
        parallel_service = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        parallel = parallel_service.suggest_batch(
            queries, 5, workers=2
        )
        assert [
            [(s.tokens, s.result_type) for s in answer]
            for answer in serial
        ] == [
            [(s.tokens, s.result_type) for s in answer]
            for answer in parallel
        ]
        for left, right in zip(serial, parallel):
            for a, b in zip(left, right):
                assert a.score == pytest.approx(b.score, rel=1e-9)
        # 3 usable queries, one of them a duplicate → 1 in-batch hit.
        assert parallel_service.stats.result_cache_hits == 1
        assert parallel_service.stats.result_cache_misses == 2
        assert parallel_service.stats.unanswerable == 1

    def test_parallel_batch_reuses_cache(self, corpus):
        service = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        )
        service.suggest("tree icdt", 5)
        batch = service.suggest_batch(["tree icdt"], 5, workers=2)
        assert batch[0]
        assert service.stats.result_cache_hits == 1
