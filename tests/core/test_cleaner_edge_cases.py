"""Edge cases for the XClean suggester beyond the paper's happy path."""

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.naive import NaiveCleaner
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import build_tree
from repro.xmltree.document import XMLDocument


def make_corpus(spec):
    return build_corpus_index(XMLDocument(build_tree(spec)))


def make_suggester(corpus, **overrides):
    defaults = dict(max_errors=1, gamma=None, min_depth=2)
    defaults.update(overrides)
    return XCleanSuggester(corpus, config=XCleanConfig(**defaults))


class TestRepeatedKeywords:
    def test_duplicate_query_keywords(self):
        corpus = make_corpus(
            ("db", [("rec", [("t", "tree tree search")])])
        )
        suggester = make_suggester(corpus)
        suggestions = suggester.suggest("tree tree")
        assert suggestions
        assert suggestions[0].tokens == ("tree", "tree")

    def test_matches_naive_with_duplicates(self):
        corpus = make_corpus(
            (
                "db",
                [
                    ("rec", [("t", "tree tree search")]),
                    ("rec", [("t", "trie search")]),
                ],
            )
        )
        config = XCleanConfig(max_errors=1, gamma=None)
        fast = XCleanSuggester(corpus, config=config)
        naive = NaiveCleaner(corpus, config=config)
        fast_scores = fast.score_all("tree tree")
        naive_scores = {
            c: s for c, s in naive.score_all("tree tree").items() if s > 0
        }
        assert set(fast_scores) == set(naive_scores)
        for c, s in fast_scores.items():
            assert s == pytest.approx(naive_scores[c], rel=1e-9)


class TestTermFrequencies:
    def test_tf_above_one_aggregated(self):
        """Multiple occurrences of a token in one leaf must count."""
        corpus = make_corpus(
            (
                "db",
                [
                    ("rec", [("t", "tree tree tree icde")]),
                    ("rec", [("t", "tree icde")]),
                ],
            )
        )
        postings = list(corpus.inverted.list_for("tree"))
        assert postings[0][2] == 3
        suggester = make_suggester(corpus)
        scores = suggester.score_all("tree icde")
        # The tf-3 record has higher p(tree|D) despite being longer.
        assert scores[("tree", "icde")] > 0


class TestDeepAndShallowStructures:
    def test_occurrences_shallower_than_min_depth(self):
        # Text directly under the root (depth 2 leaves are fine, but a
        # depth-1 posting cannot exist since the root's text would be
        # depth 1): simulate with min_depth larger than leaf depth.
        corpus = make_corpus(("db", [("rec", "tree icde")]))
        suggester = make_suggester(corpus, min_depth=3)
        # Leaves are at depth 2 < 3: no valid groups at all.
        assert suggester.suggest("tree icde") == []

    def test_min_depth_one(self):
        corpus = make_corpus(
            ("db", [("rec", [("t", "tree")]), ("rec", [("t", "icde")])])
        )
        # At d=1 the only shared type is the root itself.
        suggester = make_suggester(corpus, min_depth=1)
        suggestions = suggester.suggest("tree icde")
        assert suggestions
        assert suggestions[0].result_type == "/db"

    def test_very_deep_tree(self):
        spec = ("a", [("b", [("c", [("d", [("e", [("t", "tree icde")])])])])])
        corpus = make_corpus(spec)
        suggester = make_suggester(corpus)
        suggestions = suggester.suggest("tree icde")
        assert suggestions
        assert suggestions[0].tokens == ("tree", "icde")


class TestQueryShapes:
    def test_many_keywords(self):
        corpus = make_corpus(
            (
                "db",
                [
                    (
                        "rec",
                        [("t", "alpha bravo charlie delta echo")],
                    )
                ],
            )
        )
        suggester = make_suggester(corpus)
        suggestions = suggester.suggest(
            "alpha bravo charlie delta echo"
        )
        assert suggestions[0].tokens == (
            "alpha",
            "bravo",
            "charlie",
            "delta",
            "echo",
        )

    def test_mixed_known_unknown_keywords(self):
        corpus = make_corpus(
            ("db", [("rec", [("t", "tree index structure")])])
        )
        suggester = make_suggester(corpus)
        suggestions = suggester.suggest("tree strcture")
        assert any(
            s.tokens == ("tree", "structure") for s in suggestions
        )

    def test_whitespace_and_punctuation_query(self):
        corpus = make_corpus(("db", [("rec", [("t", "tree search")])]))
        suggester = make_suggester(corpus)
        suggestions = suggester.suggest("  tree,  search!! ")
        assert suggestions[0].tokens == ("tree", "search")


class TestScoreProperties:
    def test_scores_are_probabilistic_magnitudes(self):
        corpus = make_corpus(
            (
                "db",
                [
                    ("rec", [("t", "tree icde")]),
                    ("rec", [("t", "trie icde")]),
                ],
            )
        )
        suggester = make_suggester(corpus)
        for suggestion in suggester.suggest("tree icde"):
            assert 0.0 < suggestion.score <= 1.0

    def test_closer_variant_outranks_with_equal_support(self):
        # Symmetric contents: only the error model separates candidates.
        corpus = make_corpus(
            (
                "db",
                [
                    ("rec", [("t", "tree icde")]),
                    ("rec", [("t", "trees icde")]),
                ],
            )
        )
        suggester = make_suggester(corpus)
        suggestions = suggester.suggest("tree icde")
        assert suggestions[0].tokens == ("tree", "icde")
