"""Serving-path tracing: stitched pool traces, detailed batch stats,
worker stage-timer aggregation, and the flight recorder."""

import json

import pytest

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.exceptions import ConfigurationError, Overloaded
from repro.index.corpus import build_corpus_index
from repro.obs.export import validate_chrome_trace
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import Tracer
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument

QUERIES = ["icdt tre", "trie icde", "icdt tre", ""]


@pytest.fixture()
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


def make_service(corpus, **kwargs):
    kwargs.setdefault("config", XCleanConfig(max_errors=2))
    kwargs.setdefault("tracer", Tracer())
    return SuggestionService(corpus, **kwargs)


class TestSingleQueryTracing:
    def test_request_root_covers_engine_stages(self, corpus):
        with make_service(corpus) as service:
            service.suggest("icdt tre", 5)
            root = service.tracer.last_trace
        assert root.name == "request"
        names = {span.name for span in root.walk()}
        assert {"tokenize", "variant_gen", "merge"} <= names
        for span in root.walk():
            if span is not root:
                assert span.duration <= root.duration + 1e-9

    def test_last_stats_carries_trace_id(self, corpus):
        with make_service(corpus) as service:
            service.suggest("icdt tre", 5)
            miss_id = service.last_stats.trace_id
            root_id = service.tracer.last_trace.attributes["trace_id"]
            assert miss_id == root_id
            service.suggest("icdt tre", 5)  # cache hit
            hit = service.last_stats
        assert hit.result_cache_hits == 1
        assert hit.trace_id is not None
        assert hit.trace_id != miss_id  # a fresh request trace

    def test_untraced_service_still_serves(self, corpus):
        with SuggestionService(
            corpus, config=XCleanConfig(max_errors=2)
        ) as service:
            answer = service.suggest("icdt tre", 5)
            assert answer
            assert service.last_stats.trace_id is None
            assert service.flight_recorder is None


class TestPoolTraceStitching:
    """Acceptance: one stitched tree per batch, no orphan spans,
    worker durations consistent with the parent span."""

    def test_batch_fanout_produces_one_stitched_tree(self, corpus):
        with make_service(corpus) as service:
            answers = service.suggest_batch(QUERIES, 5, workers=2)
            root = service.tracer.last_trace
        assert [len(a) > 0 for a in answers] == [
            True, True, True, False,
        ]
        assert root.name == "batch"
        trace_id = root.attributes["trace_id"]
        task_spans = [
            span for span in root.walk() if span.name == "pool.task"
        ]
        worker_spans = [
            span for span in root.walk() if span.name == "worker"
        ]
        # Two unique answerable queries -> two pool tasks, each with
        # exactly one worker subtree stitched beneath it.
        assert len(task_spans) == 2
        assert len(worker_spans) == 2
        for task_span in task_spans:
            children = [c.name for c in task_span.children]
            assert children == ["worker"]
        for worker_span in worker_spans:
            # The worker ran under the parent's trace id and brought
            # its engine stages along.
            assert worker_span.attributes["trace_id"] == trace_id
            assert worker_span.attributes["pid"] > 0
            stage_names = {
                s.name for s in worker_span.walk()
            }
            assert {"tokenize", "variant_gen", "merge"} <= stage_names

    def test_worker_durations_fit_parent_window(self, corpus):
        with make_service(corpus) as service:
            service.suggest_batch(QUERIES, 5, workers=2)
            root = service.tracer.last_trace
        for task_span in root.walk():
            if task_span.name != "pool.task":
                continue
            worker_span = task_span.children[0]
            assert worker_span.duration <= task_span.duration + 1e-9
            assert task_span.duration <= root.duration + 1e-9
            # Epoch starts line up: the worker began after submission
            # (generous slack for clock granularity).
            assert worker_span.start >= task_span.start - 0.05

    def test_no_orphan_spans(self, corpus):
        with make_service(corpus) as service:
            service.suggest_batch(QUERIES, 5, workers=2)
            tracer = service.tracer
            root = tracer.last_trace
        # Everything the tracer retained is reachable from the root,
        # and nothing was left open or dropped.
        assert tracer.current() is None
        assert "spans_dropped" not in root.attributes
        for span in root.walk():
            for child in span.children:
                assert child in list(span.children)

    def test_batch_chrome_export_validates(self, corpus):
        from repro.obs.export import chrome_trace

        with make_service(corpus) as service:
            service.suggest_batch(QUERIES, 5, workers=2)
            root = service.tracer.last_trace
        data = chrome_trace(root)
        assert validate_chrome_trace(data) == []
        tracks = {
            e["tid"] for e in data["traceEvents"]
            if e["name"] == "worker"
        }
        assert all(tid != 1 for tid in tracks)

    def test_degraded_batch_traces_inline(self, corpus):
        with make_service(corpus) as service:
            service.close()  # pool unavailable -> degrade in-process
            service.suggest_batch(["icdt tre"], 5, workers=2)
            root = service.tracer.last_trace
        names = [span.name for span in root.walk()]
        assert "degrade" in names
        assert "pool.task" not in names


class TestBatchDetailedStats:
    def test_one_stats_per_query_in_order(self, corpus):
        with make_service(corpus) as service:
            detailed = service.suggest_batch_detailed(
                QUERIES, 5, workers=2
            )
        assert len(detailed) == len(QUERIES)
        (a1, s1), (a2, s2), (a3, s3), (a4, s4) = detailed
        assert s1.result_cache_misses == 1 and a1
        assert s2.result_cache_misses == 1 and a2
        # Third query duplicates the first: served from cache.
        assert s3.result_cache_hits == 1 and a3 == a1
        # Unanswerable: empty answer, fresh empty stats.
        assert a4 == [] and s4.result_cache_hits == 0
        assert s4.result_cache_misses == 0

    def test_trace_ids_shared_within_batch(self, corpus):
        with make_service(corpus) as service:
            detailed = service.suggest_batch_detailed(
                QUERIES, 5, workers=2
            )
            trace_id = service.tracer.last_trace.attributes[
                "trace_id"
            ]
        answered = [stats for answer, stats in detailed if answer]
        assert answered
        assert all(s.trace_id == trace_id for s in answered)

    def test_serial_batch_detailed(self, corpus):
        with make_service(corpus) as service:
            detailed = service.suggest_batch_detailed(QUERIES, 5)
        assert [bool(a) for a, _ in detailed] == [
            True, True, True, False,
        ]
        assert detailed[2][1].result_cache_hits == 1

    def test_untraced_detailed_has_no_trace_ids(self, corpus):
        with SuggestionService(
            corpus, config=XCleanConfig(max_errors=2)
        ) as service:
            detailed = service.suggest_batch_detailed(QUERIES, 5)
        assert all(s.trace_id is None for _, s in detailed)

    def test_plain_batch_still_works_after_detailed(self, corpus):
        with make_service(corpus) as service:
            service.suggest_batch_detailed(QUERIES, 5)
            answers = service.suggest_batch(QUERIES, 5)
        assert [bool(a) for a in answers] == [True, True, True, False]


class TestWorkerStageAggregation:
    def test_pool_stage_timers_merge_into_parent(self, corpus):
        with make_service(corpus) as service:
            before = service.metrics().as_dict()["stages"]
            service.suggest_batch(
                ["icdt tre", "trie icde"], 5, workers=2
            )
            after = service.metrics().as_dict()["stages"]
        merged = after.get("merge", {}).get("count", 0) - before.get(
            "merge", {}
        ).get("count", 0)
        # Both unique queries ran in workers; their merge-stage
        # observations must appear in the parent registry.
        assert merged == 2
        assert after["tokenize"]["count"] >= 2
        assert after["merge"]["sum"] > before.get("merge", {}).get(
            "sum", 0.0
        )


class TestFlightRecorder:
    def test_requests_and_batches_are_recorded(self, corpus):
        with make_service(corpus) as service:
            service.suggest("icdt tre", 5)
            service.suggest_batch(QUERIES, 5, workers=2)
            recorder = service.flight_recorder
        entries = list(recorder.entries())
        assert [e.trace.name for e in entries] == ["request", "batch"]
        assert entries[0].query == "icdt tre"
        assert entries[1].latency_s == pytest.approx(
            entries[1].trace.duration
        )

    def test_degraded_batch_is_notable(self, corpus):
        with make_service(corpus) as service:
            service.close()
            service.suggest_batch(["icdt tre"], 5, workers=2)
            recorder = service.flight_recorder
        entry = recorder.notable_entries()[0]
        assert entry.degraded is True

    def test_shed_request_records_error_flag(self, corpus):
        with make_service(corpus, max_pending=1) as service:
            service._inflight = 1  # saturate admission control
            with pytest.raises(Overloaded):
                service.suggest("icdt tre", 5)
            service._inflight = 0
            recorder = service.flight_recorder
        entry = recorder.notable_entries()[0]
        assert entry.error == "Overloaded"
        assert entry.trace.attributes["error"] == "Overloaded"

    def test_breaker_open_auto_dumps(self, corpus, tmp_path):
        path = tmp_path / "flight.jsonl"
        with make_service(
            corpus,
            flight_record_path=str(path),
            breaker_threshold=2,
        ) as service:
            service.suggest("icdt tre", 5)
            service.breaker.record_failure()
            assert not path.exists()
            service.breaker.record_failure()  # threshold -> open
        assert path.exists()
        lines = path.read_text().strip().splitlines()
        envelope = json.loads(lines[0])
        assert envelope["reason"] == "breaker_open"
        assert envelope["retained"] == 1

    def test_dump_on_demand_returns_payload_or_path(
        self, corpus, tmp_path
    ):
        with make_service(corpus) as service:
            service.suggest("icdt tre", 5)
            payload = service.dump_flight_record()
            assert json.loads(payload.splitlines()[0])[
                "flight_record"
            ]
            path = tmp_path / "dump.jsonl"
            assert service.dump_flight_record(str(path)) == str(path)
            assert path.exists()

    def test_dump_without_recorder_raises(self, corpus):
        with SuggestionService(
            corpus, config=XCleanConfig(max_errors=2)
        ) as service:
            with pytest.raises(ConfigurationError):
                service.dump_flight_record()

    def test_explicit_recorder_without_tracer_is_kept(self, corpus):
        recorder = FlightRecorder(capacity=4)
        with SuggestionService(
            corpus,
            config=XCleanConfig(max_errors=2),
            flight_recorder=recorder,
        ) as service:
            assert service.flight_recorder is recorder
            service.suggest("icdt tre", 5)
        # No tracer -> nothing recorded, but dumping works.
        assert len(recorder) == 0
        assert service.dump_flight_record().startswith("{")

    def test_slow_threshold_flags_entries(self, corpus):
        with make_service(
            corpus, slow_threshold=0.0
        ) as service:  # everything is "slow"
            service.suggest("icdt tre", 5)
            recorder = service.flight_recorder
        assert recorder.notable_entries()[0].slow is True


class TestPoolTaskClock:
    """The pool.task span anchors on wall clock but measures duration
    monotonically — a wall-clock step between submit and absorb (NTP
    slew, DST, a VM resume) must not produce an hours-long span."""

    def test_duration_ignores_wall_clock_steps(self, corpus):
        import time as real_time
        from time import perf_counter

        from repro.core.suggestion import CleaningStats
        from repro.obs.trace import Span

        with make_service(corpus) as service:
            tracer = service.tracer
            # Simulate: the wall clock stepped forward a full hour
            # after submission, while only ~0.2 monotonic seconds of
            # real work elapsed.
            submitted_at = real_time.time() - 3600.0
            submitted_perf = perf_counter() - 0.2
            worker_span = Span(
                "worker", start=submitted_at, duration=0.05
            )
            answer = (
                [],
                CleaningStats(),
                {"span": worker_span},
            )
            tracer.begin("request")
            try:
                result = service._absorb_worker_answer(
                    ("icdt tre", 5, None), answer,
                    submitted_at, submitted_perf,
                )
            finally:
                root = tracer.end()
            assert result == ([], answer[1])
            task_span = root.find("pool.task")
            assert task_span is not None
            # Start stays on the wall-clock timeline...
            assert task_span.start == submitted_at
            # ...but the duration is monotonic elapsed time, not the
            # hour the wall clock claims passed.
            assert 0.05 <= task_span.duration < 10.0

    def test_duration_at_least_covers_worker_span(self, corpus):
        from time import perf_counter

        import time as real_time

        from repro.core.suggestion import CleaningStats
        from repro.obs.trace import Span

        with make_service(corpus) as service:
            tracer = service.tracer
            submitted_at = real_time.time()
            submitted_perf = perf_counter()
            # Worker claims more time than the parent measured (its
            # perf_counter is a different clock domain): the span must
            # still contain its child.
            worker_span = Span(
                "worker", start=submitted_at, duration=123.0
            )
            answer = ([], CleaningStats(), {"span": worker_span})
            tracer.begin("request")
            try:
                service._absorb_worker_answer(
                    ("icdt tre", 5, None), answer,
                    submitted_at, submitted_perf,
                )
            finally:
                root = tracer.end()
            task_span = root.find("pool.task")
            assert task_span.duration >= 123.0
            assert task_span.children == [worker_span]
