"""Validation tests for XCleanConfig."""

import pytest

from repro.core.config import XCleanConfig
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        config = XCleanConfig()
        assert config.beta == 5.0  # Table IV's best setting
        assert config.min_depth == 2  # Section V-B
        assert config.gamma == 1000  # Table V's saturation point
        assert config.reduction == 0.8  # Example 3
        assert config.use_skipping is True
        assert config.prior == "uniform"

    def test_frozen(self):
        config = XCleanConfig()
        with pytest.raises(AttributeError):
            config.beta = 1.0  # type: ignore[misc]


class TestValidation:
    def test_negative_max_errors(self):
        with pytest.raises(ConfigurationError):
            XCleanConfig(max_errors=-1)

    def test_gamma_zero(self):
        with pytest.raises(ConfigurationError):
            XCleanConfig(gamma=0)

    def test_gamma_none_allowed(self):
        assert XCleanConfig(gamma=None).gamma is None

    def test_min_depth_zero(self):
        with pytest.raises(ConfigurationError):
            XCleanConfig(min_depth=0)

    def test_unknown_prior(self):
        with pytest.raises(ConfigurationError):
            XCleanConfig(prior="zipf")

    def test_valid_priors(self):
        assert XCleanConfig(prior="length").prior == "length"

    def test_max_errors_zero_allowed(self):
        # ε=0: only exact-vocabulary queries produce candidates.
        assert XCleanConfig(max_errors=0).max_errors == 0
