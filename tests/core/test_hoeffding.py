"""Tests for the Hoeffding bound helpers (Section V-D)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pruning import (
    hoeffding_confidence,
    samples_for_confidence,
)
from repro.exceptions import ConfigurationError


class TestConfidence:
    def test_zero_samples_gives_no_confidence(self):
        assert hoeffding_confidence(0, 0.1) == 0.0

    def test_exact_formula(self):
        value = hoeffding_confidence(100, 0.1)
        assert value == pytest.approx(1 - 2 * math.exp(-2 * 100 * 0.01))

    def test_monotone_in_samples(self):
        values = [hoeffding_confidence(n, 0.1) for n in (10, 100, 1000)]
        assert values == sorted(values)

    def test_monotone_in_epsilon(self):
        values = [
            hoeffding_confidence(100, e) for e in (0.01, 0.1, 0.3)
        ]
        assert values == sorted(values)

    def test_clamped_to_unit_interval(self):
        assert 0.0 <= hoeffding_confidence(1, 0.001) <= 1.0
        assert hoeffding_confidence(10**6, 0.5) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hoeffding_confidence(-1, 0.1)
        with pytest.raises(ConfigurationError):
            hoeffding_confidence(1, -0.1)

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_always_a_probability(self, n, epsilon):
        assert 0.0 <= hoeffding_confidence(n, epsilon) <= 1.0


class TestSamplesForConfidence:
    def test_round_trip(self):
        n = samples_for_confidence(0.95, 0.05)
        assert hoeffding_confidence(n, 0.05) >= 0.95
        if n > 0:
            assert hoeffding_confidence(n - 1, 0.05) < 0.95

    def test_tighter_epsilon_needs_more_samples(self):
        assert samples_for_confidence(0.9, 0.01) > samples_for_confidence(
            0.9, 0.1
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            samples_for_confidence(1.0, 0.1)
        with pytest.raises(ConfigurationError):
            samples_for_confidence(0.9, 0.0)

    @given(
        st.floats(min_value=0.0, max_value=0.999),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_inverse_property(self, confidence, epsilon):
        n = samples_for_confidence(confidence, epsilon)
        assert hoeffding_confidence(n, epsilon) >= confidence - 1e-12


class TestEdgeCases:
    def test_zero_epsilon_clamps_to_zero(self):
        # Raw bound is 1 - 2·exp(0) = -1; the clamp keeps it a
        # probability: no interval width, no confidence.
        assert hoeffding_confidence(100, 0.0) == 0.0
        assert hoeffding_confidence(0, 0.0) == 0.0

    def test_huge_sample_count_saturates_at_one(self):
        # exp underflows to exactly 0.0 — no overflow, clean 1.0.
        assert hoeffding_confidence(10**9, 0.5) == 1.0

    def test_zero_confidence_still_needs_samples(self):
        # Even "no confidence" needs 2·exp(-2nε²) <= 1, i.e.
        # n >= ln(2) / (2ε²) — the bound is vacuous below that.
        n = samples_for_confidence(0.0, 0.1)
        assert n == math.ceil(math.log(2.0) / (2.0 * 0.1 * 0.1))
        assert hoeffding_confidence(n, 0.1) >= 0.0
        assert hoeffding_confidence(n - 1, 0.1) == 0.0

    def test_epsilon_one_round_trip(self):
        n = samples_for_confidence(0.99, 1.0)
        assert hoeffding_confidence(n, 1.0) >= 0.99
        assert hoeffding_confidence(n - 1, 1.0) < 0.99

    def test_returns_builtin_int(self):
        assert isinstance(samples_for_confidence(0.9, 0.1), int)
        assert isinstance(samples_for_confidence(0.0, 1.0), int)
