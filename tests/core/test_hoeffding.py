"""Tests for the Hoeffding bound helpers (Section V-D)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pruning import (
    hoeffding_confidence,
    samples_for_confidence,
)
from repro.exceptions import ConfigurationError


class TestConfidence:
    def test_zero_samples_gives_no_confidence(self):
        assert hoeffding_confidence(0, 0.1) == 0.0

    def test_exact_formula(self):
        value = hoeffding_confidence(100, 0.1)
        assert value == pytest.approx(1 - 2 * math.exp(-2 * 100 * 0.01))

    def test_monotone_in_samples(self):
        values = [hoeffding_confidence(n, 0.1) for n in (10, 100, 1000)]
        assert values == sorted(values)

    def test_monotone_in_epsilon(self):
        values = [
            hoeffding_confidence(100, e) for e in (0.01, 0.1, 0.3)
        ]
        assert values == sorted(values)

    def test_clamped_to_unit_interval(self):
        assert 0.0 <= hoeffding_confidence(1, 0.001) <= 1.0
        assert hoeffding_confidence(10**6, 0.5) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hoeffding_confidence(-1, 0.1)
        with pytest.raises(ConfigurationError):
            hoeffding_confidence(1, -0.1)

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_always_a_probability(self, n, epsilon):
        assert 0.0 <= hoeffding_confidence(n, epsilon) <= 1.0


class TestSamplesForConfidence:
    def test_round_trip(self):
        n = samples_for_confidence(0.95, 0.05)
        assert hoeffding_confidence(n, 0.05) >= 0.95
        if n > 0:
            assert hoeffding_confidence(n - 1, 0.05) < 0.95

    def test_tighter_epsilon_needs_more_samples(self):
        assert samples_for_confidence(0.9, 0.01) > samples_for_confidence(
            0.9, 0.1
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            samples_for_confidence(1.0, 0.1)
        with pytest.raises(ConfigurationError):
            samples_for_confidence(0.9, 0.0)

    @given(
        st.floats(min_value=0.0, max_value=0.999),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_inverse_property(self, confidence, epsilon):
        n = samples_for_confidence(confidence, epsilon)
        assert hoeffding_confidence(n, epsilon) >= confidence - 1e-12
