"""Tests for the error models (Section IV-B1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.error_model import (
    ExponentialErrorModel,
    MaysErrorModel,
    query_error_weight,
)
from repro.exceptions import ConfigurationError
from repro.fastss.index import Variant

VARIANTS = (
    Variant(0, "tree"),
    Variant(1, "trees"),
    Variant(1, "trie"),
    Variant(2, "tried"),
)


class TestExponentialModel:
    def test_weights_normalized(self):
        weights = ExponentialErrorModel(5.0).variant_weights(
            "tree", VARIANTS
        )
        assert abs(sum(weights.values()) - 1.0) < 1e-12

    def test_exact_match_dominates(self):
        weights = ExponentialErrorModel(5.0).variant_weights(
            "tree", VARIANTS
        )
        assert weights["tree"] > weights["trees"] > weights["tried"]

    def test_equal_distance_equal_weight(self):
        weights = ExponentialErrorModel(5.0).variant_weights(
            "tree", VARIANTS
        )
        assert weights["trees"] == weights["trie"]

    def test_exponential_ratio(self):
        beta = 3.0
        weights = ExponentialErrorModel(beta).variant_weights(
            "tree", VARIANTS
        )
        assert weights["trees"] / weights["tree"] == pytest.approx(
            math.exp(-beta)
        )

    def test_beta_zero_is_uniform(self):
        weights = ExponentialErrorModel(0.0).variant_weights(
            "tree", VARIANTS
        )
        assert all(
            w == pytest.approx(1 / len(VARIANTS))
            for w in weights.values()
        )

    def test_empty_variants(self):
        assert ExponentialErrorModel().variant_weights("x", ()) == {}

    def test_negative_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialErrorModel(-1.0)

    @given(st.floats(min_value=0.0, max_value=20.0))
    def test_always_a_distribution(self, beta):
        weights = ExponentialErrorModel(beta).variant_weights(
            "tree", VARIANTS
        )
        assert abs(sum(weights.values()) - 1.0) < 1e-9
        assert all(w > 0 for w in weights.values())

    def test_larger_beta_penalizes_more(self):
        soft = ExponentialErrorModel(1.0).variant_weights("tree", VARIANTS)
        hard = ExponentialErrorModel(8.0).variant_weights("tree", VARIANTS)
        assert hard["tried"] < soft["tried"]
        assert hard["tree"] > soft["tree"]


class TestMaysModel:
    def test_self_gets_alpha(self):
        weights = MaysErrorModel(0.9).variant_weights("tree", VARIANTS)
        assert weights["tree"] == pytest.approx(0.9)

    def test_rest_shared_equally(self):
        weights = MaysErrorModel(0.9).variant_weights("tree", VARIANTS)
        others = [weights[t] for t in ("trees", "trie", "tried")]
        assert all(w == pytest.approx(0.1 / 3) for w in others)

    def test_out_of_vocabulary_keyword_uniform(self):
        variants = (Variant(1, "tree"), Variant(1, "trie"))
        weights = MaysErrorModel(0.9).variant_weights("tre", variants)
        assert weights == {
            "tree": pytest.approx(0.5),
            "trie": pytest.approx(0.5),
        }

    def test_only_self(self):
        weights = MaysErrorModel(0.9).variant_weights(
            "tree", (Variant(0, "tree"),)
        )
        assert weights == {"tree": 1.0}

    def test_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            MaysErrorModel(0.0)
        with pytest.raises(ConfigurationError):
            MaysErrorModel(1.0)

    def test_empty_variants(self):
        assert MaysErrorModel().variant_weights("x", ()) == {}

    def test_normalized(self):
        weights = MaysErrorModel(0.7).variant_weights("tree", VARIANTS)
        assert sum(weights.values()) == pytest.approx(1.0)


class TestQueryErrorWeight:
    def test_product_over_positions(self):
        per_keyword = [{"a": 0.5, "b": 0.5}, {"c": 0.25}]
        assert query_error_weight(per_keyword, ("a", "c")) == pytest.approx(
            0.125
        )

    def test_missing_token_raises(self):
        with pytest.raises(KeyError):
            query_error_weight([{"a": 1.0}], ("z",))

    def test_empty_candidate(self):
        assert query_error_weight([], ()) == 1.0
