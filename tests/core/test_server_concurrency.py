"""Thread-safety of the serving core.

The HTTP front-end calls one :class:`SuggestionService` from many
executor threads at once, so admission bookkeeping, the result cache,
and the service counters must hold exact invariants under concurrency:
``_inflight`` returns to zero, and every submitted query is accounted
for as either served or shed — no lost or double-counted requests.
"""

import threading

import pytest

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.exceptions import Overloaded
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument

THREADS = 8
QUERIES_PER_THREAD = 64  # 8 * 64 = 512 total submissions

#: A mix of cache-hitting repeats, distinct misses, and unanswerables.
QUERY_MIX = [
    "tree icdt",
    "trie icde",
    "databas",
    "tree icdt",
    "xyzzy quux",
    "icdt",
    "tree icdt",
    "trie",
]


@pytest.fixture()
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


def hammer(service, *, threads=THREADS, per_thread=QUERIES_PER_THREAD):
    """Drive ``service.suggest`` from many threads; return tallies."""
    barrier = threading.Barrier(threads)
    served = []
    shed = []
    failures = []

    def worker(worker_id):
        barrier.wait()  # maximize overlap
        for i in range(per_thread):
            query = QUERY_MIX[(worker_id + i) % len(QUERY_MIX)]
            try:
                suggestions = service.suggest(query, 5)
            except Overloaded as error:
                shed.append(error)
            except Exception as error:  # noqa: BLE001 - tallied below
                failures.append(error)
            else:
                served.append((query, suggestions))

    pool = [
        threading.Thread(target=worker, args=(n,))
        for n in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return served, shed, failures


class TestThreadedSuggest:
    def test_unbounded_service_serves_everything(self, corpus):
        with SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        ) as service:
            served, shed, failures = hammer(service)
            assert failures == []
            assert shed == []
            assert len(served) == THREADS * QUERIES_PER_THREAD
            assert service._inflight == 0
            stats = service.stats
            assert stats.queries_served == THREADS * QUERIES_PER_THREAD
            assert stats.shed_queries == 0
            # Every query was either a cache hit or a miss — and the
            # counters were not torn by concurrent increments.
            assert (
                stats.result_cache_hits + stats.result_cache_misses
                == stats.queries_served
            )

    def test_bounded_service_accounts_for_every_query(self, corpus):
        with SuggestionService(
            corpus,
            config=XCleanConfig(max_errors=1),
            max_pending=2,
        ) as service:
            served, shed, failures = hammer(service)
            assert failures == []
            submitted = THREADS * QUERIES_PER_THREAD
            assert len(served) + len(shed) == submitted
            assert service._inflight == 0
            stats = service.stats
            assert stats.queries_served == len(served)
            assert stats.shed_queries == len(shed)
            assert stats.queries_served + stats.shed_queries == submitted
            # Shed errors carry an actionable backoff hint (the
            # admission path must not leave retry_after unset).
            for error in shed:
                assert error.retry_after is not None
                assert error.retry_after > 0

    def test_concurrent_results_match_serial_reference(self, corpus):
        config = XCleanConfig(max_errors=1)
        with SuggestionService(corpus, config=config) as reference:
            expected = {
                query: reference.suggest(query, 5)
                for query in QUERY_MIX
            }
        with SuggestionService(corpus, config=config) as service:
            served, shed, failures = hammer(service)
            assert failures == [] and shed == []
            for query, suggestions in served:
                assert suggestions == expected[query], query

    def test_cache_stays_bounded_under_concurrency(self, corpus):
        with SuggestionService(
            corpus,
            config=XCleanConfig(max_errors=1),
            result_cache_size=2,
        ) as service:
            hammer(service)
            assert len(service._result_cache) <= 2
            assert service._inflight == 0


class TestAdmissionHint:
    def test_admission_shed_carries_retry_after(self, corpus):
        with SuggestionService(
            corpus,
            config=XCleanConfig(max_errors=1),
            max_pending=1,
        ) as service:
            service.admit(1)  # occupy the only slot
            try:
                with pytest.raises(Overloaded) as excinfo:
                    service.suggest("tree icdt", 5)
            finally:
                service.release(1)
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0

    def test_hint_tracks_observed_latency(self, corpus):
        with SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        ) as service:
            floor = service.retry_after_hint()
            assert floor > 0
            # Feed the EWMA slow observations; the hint must rise.
            for _ in range(50):
                service._observe_latency(2.0)
            assert service.retry_after_hint() > floor
            assert service.retry_after_hint() <= 2.0
