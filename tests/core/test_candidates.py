"""Tests for the candidate query space (Section IV-A, Example 2)."""

import pytest

from repro.core.candidates import CandidateSpace
from repro.core.error_model import ExponentialErrorModel
from repro.fastss.generator import VariantGenerator

VOCAB = ["tree", "trees", "trie", "icde", "icdt"]


@pytest.fixture
def space():
    generator = VariantGenerator(VOCAB, max_errors=1)
    return CandidateSpace(
        ["tree", "icdt"], generator, ExponentialErrorModel(5.0), 1
    )


class TestExample2:
    """var_1(tree) = {tree, trees, trie}, var_1(icdt) = {icdt, icde};
    the space has 6 candidates."""

    def test_variant_sets(self, space):
        assert set(space.variant_tokens(0)) == {"tree", "trees", "trie"}
        assert set(space.variant_tokens(1)) == {"icdt", "icde"}

    def test_space_size(self, space):
        assert space.space_size() == 6

    def test_enumerate_all(self, space):
        candidates = set(space.enumerate_all())
        assert candidates == {
            ("tree", "icdt"),
            ("tree", "icde"),
            ("trees", "icdt"),
            ("trees", "icde"),
            ("trie", "icdt"),
            ("trie", "icde"),
        }

    def test_viable(self, space):
        assert space.is_viable


class TestErrorWeights:
    def test_weight_product(self, space):
        w_exact = space.per_keyword[0].weight_of("tree")
        w_icdt = space.per_keyword[1].weight_of("icdt")
        assert space.error_weight(("tree", "icdt")) == pytest.approx(
            w_exact * w_icdt
        )

    def test_exact_candidate_has_max_weight(self, space):
        weights = {
            c: space.error_weight(c) for c in space.enumerate_all()
        }
        assert max(weights, key=weights.get) == ("tree", "icdt")


class TestEnumeratePresent:
    def test_restricts_to_present(self, space):
        present = [{"trie", "tree"}, {"icde"}]
        assert set(space.enumerate_present(present)) == {
            ("tree", "icde"),
            ("trie", "icde"),
        }

    def test_missing_position_yields_nothing(self, space):
        assert list(space.enumerate_present([{"tree"}, set()])) == []

    def test_ignores_non_variants(self, space):
        present = [{"tree", "unrelated"}, {"icde"}]
        assert set(space.enumerate_present(present)) == {("tree", "icde")}

    def test_order_deterministic(self, space):
        present = [["trie", "tree"], ["icde", "icdt"]]
        first = list(space.enumerate_present(present))
        second = list(
            space.enumerate_present([["tree", "trie"], ["icdt", "icde"]])
        )
        assert first == second


class TestNonViable:
    def test_keyword_without_variants(self):
        generator = VariantGenerator(VOCAB, max_errors=1)
        space = CandidateSpace(
            ["tree", "zzzzzzz"], generator, ExponentialErrorModel(), 1
        )
        assert not space.is_viable
        assert space.space_size() == 0
