"""Tests for scatter-gather serving over shard manifests.

The load-bearing claim: ``ShardedSuggestionService`` returns the
byte-identical top-k of a single-index run at every shard count,
because the gather folds full per-shard partial-accumulator tables
through the same Shewchuk expansions the single-index pool uses.

Fault-injection tests replace ``_worker_shard_partials`` with
module-level stand-ins *before* the lazy replica pools fork, so the
forked workers inherit the patched module attribute (same technique
as ``tests/core/test_server.py``).
"""

import os
import time

import pytest

from repro.core import shards as shards_module
from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.shards import (
    ShardedSuggestionService,
    fold_cleaning_stats,
    merge_partial_tables,
)
from repro.core.suggestion import CleaningStats
from repro.eval.experiments import dblp_setting
from repro.exceptions import ConfigurationError, QueryError
from repro.index.corpus import build_corpus_index
from repro.index.sharding import build_sharded_snapshot
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument

SHARD_COUNTS = (1, 2, 4, 7)
TINY_QUERY = "icdt tre"


def _config(kernel: bool = True) -> XCleanConfig:
    # gamma=None keeps the accumulator pool unbounded so the
    # byte-identity claim is unconditional (no evictions anywhere).
    return XCleanConfig(max_errors=2, gamma=None, merge_kernel=kernel)


def _key(suggestion):
    return (suggestion.tokens, suggestion.score, suggestion.result_type)


# ----------------------------------------------------------------------
# Worker stand-ins (module-level: picklable by reference, inherited by
# forked replica processes).
# ----------------------------------------------------------------------

_REAL_WORKER = shards_module._worker_shard_partials
_MARKER_DIR = ""


def _fail_once_worker(task):
    marker = os.path.join(_MARKER_DIR, "failed-once")
    try:
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return _REAL_WORKER(task)
    os.close(handle)
    raise RuntimeError("injected one-shot replica failure")


def _fail_shard_zero_worker(task):
    if task[2] == 0:
        raise RuntimeError("injected shard-0 failure")
    return _REAL_WORKER(task)


def _always_fail_worker(task):
    raise RuntimeError("injected permanent replica failure")


def _sleepy_worker(task):
    time.sleep(3.0)
    return _REAL_WORKER(task)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def setting():
    return dblp_setting("small")


@pytest.fixture(scope="module")
def queries(setting):
    picked = []
    for records in setting.workloads.values():
        picked.extend(record.dirty_text for record in records[:8])
    return picked


@pytest.fixture(scope="module")
def manifests(setting, tmp_path_factory):
    base = tmp_path_factory.mktemp("dblp-shards")
    built = {}
    for count in SHARD_COUNTS:
        directory = base / f"n{count}"
        directory.mkdir()
        built[count] = build_sharded_snapshot(
            setting.corpus, str(directory), count
        )
    return built


@pytest.fixture(scope="module")
def reference(setting, queries):
    """Single-index answers per kernel setting; None = unanswerable."""
    answers = {}
    for kernel in (True, False):
        suggester = XCleanSuggester(
            setting.corpus, config=_config(kernel)
        )
        rows = []
        for query in queries:
            try:
                rows.append(
                    [_key(s) for s in suggester.suggest(query, 10)]
                )
            except QueryError:
                rows.append(None)
        answers[kernel] = rows
    return answers


@pytest.fixture(scope="module")
def tiny_manifest(tmp_path_factory):
    corpus = build_corpus_index(XMLDocument(paper_example_tree()))
    directory = tmp_path_factory.mktemp("tiny-shards")
    return build_sharded_snapshot(corpus, str(directory), 2)


@pytest.fixture(scope="module")
def tiny_reference(tiny_manifest):
    with ShardedSuggestionService(
        tiny_manifest, config=XCleanConfig(max_errors=1)
    ) as service:
        return [_key(s) for s in service.suggest(TINY_QUERY, 5)]


# ----------------------------------------------------------------------
# Merge-layer units
# ----------------------------------------------------------------------


class TestMergePartialTables:
    def test_ties_break_by_candidate_ascending(self):
        # Manufactured exact ties: same score, three candidates.  The
        # documented total order is (-score, candidate) — identical to
        # AccumulatorPool.top_k, so shard counts cannot reorder ties.
        rows = [
            (("zeta",), (0.5,), 2.0, 1.0, "conf", 1),
            (("alpha",), (0.25,), 4.0, 1.0, "conf", 1),
            (("mid",), (1.0,), 1.0, 1.0, "conf", 1),
        ]
        merged, count = merge_partial_tables([rows], 10)
        assert count == 3
        assert [s.score for s in merged] == [1.0, 1.0, 1.0]
        assert [s.tokens for s in merged] == [
            ("alpha",), ("mid",), ("zeta",),
        ]

    def test_cross_shard_fold_is_exact(self):
        import math

        parts_a = (0.1, 1e-17)
        parts_b = (0.3, -2e-17, 0.2)
        shard_a = [(("x",), parts_a, 3.0, 2.0, "t", 1)]
        shard_b = [(("x",), parts_b, 3.0, 2.0, "t", 2)]
        merged, count = merge_partial_tables([shard_a, shard_b], 5)
        assert count == 1
        expected = 3.0 * math.fsum(parts_a + parts_b) / 2.0
        assert merged[0].score == expected

    def test_fold_order_does_not_matter(self):
        shard_a = [(("x",), (0.125, 3e-18), 1.0, 1.0, "t", 1)]
        shard_b = [(("x",), (0.375, -1e-18), 1.0, 1.0, "t", 1)]
        ab, _ = merge_partial_tables([shard_a, shard_b], 1)
        ba, _ = merge_partial_tables([shard_b, shard_a], 1)
        assert ab[0].score == ba[0].score

    def test_zero_normalizer_scores_zero(self):
        rows = [(("x",), (1.0,), 1.0, 0.0, "t", 1)]
        merged, _ = merge_partial_tables([rows], 1)
        assert merged[0].score == 0.0

    def test_k_truncates(self):
        rows = [
            (("a",), (3.0,), 1.0, 1.0, "t", 1),
            (("b",), (2.0,), 1.0, 1.0, "t", 1),
            (("c",), (1.0,), 1.0, 1.0, "t", 1),
        ]
        merged, count = merge_partial_tables([rows], 2)
        assert count == 3
        assert [s.tokens for s in merged] == [("a",), ("b",)]


class TestFoldCleaningStats:
    def test_sums_max_and_sticky_partial(self):
        a = CleaningStats(
            keywords=2, space_size=9, entities_scored=3,
            postings_read=10,
        )
        b = CleaningStats(
            keywords=2, space_size=9, entities_scored=4,
            postings_read=7, partial=True,
        )
        folded = fold_cleaning_stats([a, b], trace_id="t-1")
        assert folded.keywords == 2
        assert folded.space_size == 9
        assert folded.entities_scored == 7
        assert folded.postings_read == 17
        assert folded.partial is True
        assert folded.trace_id == "t-1"


# ----------------------------------------------------------------------
# Byte-identical equivalence (the acceptance criterion)
# ----------------------------------------------------------------------


class TestEquivalence:
    @pytest.mark.parametrize("kernel", (True, False))
    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    def test_in_process_matches_single_index(
        self, manifests, queries, reference, shard_count, kernel
    ):
        with ShardedSuggestionService(
            manifests[shard_count], config=_config(kernel)
        ) as service:
            for query, expected in zip(queries, reference[kernel]):
                if expected is None:
                    with pytest.raises(QueryError):
                        service.suggest(query, 10)
                    continue
                got, stats = service.suggest_detailed(query, 10)
                assert [_key(s) for s in got] == expected
                assert stats.accumulator_evictions == 0
                assert not stats.partial

    @pytest.mark.parametrize(
        "replicas,routing",
        ((1, "round-robin"), (2, "least-loaded")),
    )
    def test_pooled_matches_single_index(
        self, manifests, queries, reference, replicas, routing
    ):
        pairs = [
            (query, expected)
            for query, expected in zip(queries, reference[True])
            if expected is not None
        ][:6]
        with ShardedSuggestionService(
            manifests[4],
            config=_config(True),
            replicas=replicas,
            routing=routing,
            close_grace=2.0,
        ) as service:
            for query, expected in pairs:
                assert [
                    _key(s) for s in service.suggest(query, 10)
                ] == expected
            assert service.stats.pool_starts > 0
            assert service.stats.shard_dispatches >= 4 * len(pairs)
            assert service.stats.worker_failures == 0
            assert service.stats.shards_omitted == 0

    def test_batch_threaded_matches_single_index(
        self, manifests, queries, reference
    ):
        pairs = [
            (query, expected)
            for query, expected in zip(queries, reference[True])
            if expected is not None
        ][:8]
        batch = [query for query, _ in pairs]
        # Duplicates exercise the coalescing path.
        batch = batch + batch[:2]
        with ShardedSuggestionService(
            manifests[2],
            config=_config(True),
            replicas=1,
            workers=4,
            close_grace=2.0,
        ) as service:
            answers = service.suggest_batch(batch, k=10)
        assert len(answers) == len(batch)
        expected_rows = [expected for _, expected in pairs]
        expected_rows = expected_rows + expected_rows[:2]
        for got, expected in zip(answers, expected_rows):
            assert [_key(s) for s in got] == expected

    def test_gamma_bounded_run_reports_no_evictions(
        self, manifests, queries, reference
    ):
        config = XCleanConfig(max_errors=2, gamma=1000)
        with ShardedSuggestionService(
            manifests[4], config=config
        ) as service:
            for query, expected in zip(queries, reference[True]):
                if expected is None:
                    continue
                got, stats = service.suggest_detailed(query, 10)
                # At gamma=1000 nothing is evicted on this corpus, so
                # the bounded run must still be byte-identical.
                assert stats.accumulator_evictions == 0
                assert [_key(s) for s in got] == expected


# ----------------------------------------------------------------------
# Service behaviour
# ----------------------------------------------------------------------


class TestServiceBehaviour:
    def test_unanswerable_query(self, tiny_manifest):
        with ShardedSuggestionService(
            tiny_manifest, config=XCleanConfig(max_errors=1)
        ) as service:
            with pytest.raises(QueryError):
                service.suggest("???", 5)
            answers = service.suggest_batch(["???", TINY_QUERY], k=5)
            assert answers[0] == []
            assert answers[1]
            assert service.stats.unanswerable >= 1

    def test_result_cache_keyed_on_generation(
        self, tiny_manifest, tiny_reference
    ):
        with ShardedSuggestionService(
            tiny_manifest, config=XCleanConfig(max_errors=1)
        ) as service:
            first = service.suggest(TINY_QUERY, 5)
            service.suggest(TINY_QUERY, 5)
            assert service.stats.result_cache_hits == 1
            assert service.stats.result_cache_misses == 1
            service.bump_generation()
            third = service.suggest(TINY_QUERY, 5)
            assert service.stats.result_cache_misses == 2
            assert [_key(s) for s in first] == tiny_reference
            assert [_key(s) for s in third] == tiny_reference

    def test_configuration_errors(self, tiny_manifest):
        with pytest.raises(ConfigurationError, match="min_depth"):
            ShardedSuggestionService(
                tiny_manifest,
                config=XCleanConfig(max_errors=1, min_depth=1),
            )
        with pytest.raises(ConfigurationError, match="routing"):
            ShardedSuggestionService(
                tiny_manifest,
                config=XCleanConfig(max_errors=1),
                routing="bogus",
            )
        with pytest.raises(ConfigurationError, match="replicas"):
            ShardedSuggestionService(
                tiny_manifest,
                config=XCleanConfig(max_errors=1),
                replicas=-1,
            )

    def test_per_shard_stage_metrics_are_labeled(self, tiny_manifest):
        with ShardedSuggestionService(
            tiny_manifest, config=XCleanConfig(max_errors=1)
        ) as service:
            service.suggest(TINY_QUERY, 5)
            counters = service.metrics().as_dict()["counters"]
        labeled = [
            name for name in counters
            if name.startswith("shard_stage_seconds_total{")
        ]
        assert labeled, "expected per-shard stage counters"
        assert any('shard="0"' in name for name in labeled)
        assert any('shard="1"' in name for name in labeled)


# ----------------------------------------------------------------------
# Fault injection: failover ladder, degrade, omission, breaker
# ----------------------------------------------------------------------


class TestFaultInjection:
    def test_failover_to_second_replica(
        self, tiny_manifest, tiny_reference, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            "tests.core.test_shards._MARKER_DIR", str(tmp_path)
        )
        monkeypatch.setattr(
            shards_module, "_worker_shard_partials", _fail_once_worker
        )
        with ShardedSuggestionService(
            tiny_manifest,
            config=XCleanConfig(max_errors=1),
            replicas=2,
            close_grace=2.0,
        ) as service:
            got = service.suggest(TINY_QUERY, 5)
            assert [_key(s) for s in got] == tiny_reference
            assert service.stats.worker_failures == 1
            assert service.stats.replica_failovers == 1
            assert service.stats.degraded_queries == 0
            assert service.stats.shards_omitted == 0

    def test_exhausted_shard_degrades_in_process(
        self, tiny_manifest, tiny_reference, monkeypatch
    ):
        monkeypatch.setattr(
            shards_module, "_worker_shard_partials", _always_fail_worker
        )
        with ShardedSuggestionService(
            tiny_manifest,
            config=XCleanConfig(max_errors=1),
            replicas=1,
            close_grace=2.0,
        ) as service:
            got, stats = service.suggest_detailed(TINY_QUERY, 5)
            assert [_key(s) for s in got] == tiny_reference
            assert not stats.partial
            assert service.stats.worker_failures == 2
            assert service.stats.degraded_queries == 2

    def test_omitted_shard_serves_partial_and_never_caches(
        self, tiny_manifest, monkeypatch
    ):
        monkeypatch.setattr(
            shards_module,
            "_worker_shard_partials",
            _fail_shard_zero_worker,
        )
        with ShardedSuggestionService(
            tiny_manifest,
            config=XCleanConfig(max_errors=1),
            replicas=1,
            degrade_in_process=False,
            breaker_threshold=10,
            close_grace=2.0,
        ) as service:
            _, stats = service.suggest_detailed(TINY_QUERY, 5)
            assert stats.partial
            assert service.stats.shards_omitted == 1
            assert service.stats.partial_results == 1
            # Partial answers are never cached: the same query again
            # recomputes rather than serving the incomplete top-k.
            service.suggest_detailed(TINY_QUERY, 5)
            assert service.stats.result_cache_hits == 0
            assert service.stats.result_cache_misses == 2
            assert service.stats.shards_omitted == 2

    def test_worker_timeout_degrades(
        self, tiny_manifest, tiny_reference, monkeypatch
    ):
        monkeypatch.setattr(
            shards_module, "_worker_shard_partials", _sleepy_worker
        )
        with ShardedSuggestionService(
            tiny_manifest,
            config=XCleanConfig(max_errors=1),
            replicas=1,
            worker_timeout=0.3,
            close_grace=0.5,
        ) as service:
            got = service.suggest(TINY_QUERY, 5)
            assert [_key(s) for s in got] == tiny_reference
            assert service.stats.worker_timeouts >= 1
            assert service.stats.degraded_queries >= 1

    def test_breaker_opens_and_skips_dead_replicas(
        self, tiny_manifest, monkeypatch
    ):
        monkeypatch.setattr(
            shards_module, "_worker_shard_partials", _always_fail_worker
        )
        with ShardedSuggestionService(
            tiny_manifest,
            config=XCleanConfig(max_errors=1),
            replicas=1,
            breaker_threshold=1,
            breaker_cooldown=60.0,
            close_grace=2.0,
        ) as service:
            service.suggest(TINY_QUERY, 5)
            assert service.stats.worker_failures == 2
            # Both breakers are now open: the second (uncached) query
            # must not dispatch at all, just degrade in-process.
            service.suggest("tre", 5)
            assert service.stats.worker_failures == 2
            assert service.stats.degraded_queries == 4
            counters = service.metrics().as_dict()["counters"]
            assert counters['breaker_transitions_total{to="open"}'] == 2

    def test_fault_plan_exercises_shard_query_site(
        self, tiny_manifest, tiny_reference
    ):
        config = XCleanConfig(
            max_errors=1, fault_plan="shard.query:raise x1"
        )
        with ShardedSuggestionService(
            tiny_manifest, config=config, replicas=1, close_grace=2.0
        ) as service:
            got = service.suggest(TINY_QUERY, 5)
            assert [_key(s) for s in got] == tiny_reference
            # The x1 counter is per worker process: each shard's
            # replica raised once, then the coordinator degraded.
            assert service.stats.worker_failures == 2
            assert service.stats.degraded_queries == 2
