"""Tests for result-type inference (Eq. 7 / Example 3)."""

import math

import pytest

from repro.core.result_type import ResultTypeConfig, ResultTypeFinder
from repro.exceptions import ConfigurationError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture
def finder(corpus):
    return ResultTypeFinder(
        corpus, ResultTypeConfig(reduction=0.8, min_depth=2)
    )


def path_string(corpus, pid):
    return corpus.path_table.string_of(pid)


class TestExample3:
    """The paper's worked utility computation, verbatim."""

    def test_utilities(self, corpus, finder):
        table = corpus.path_table
        candidate = ("trie", "icde")
        r = 0.8
        u1 = finder.utility(candidate, table.id_of(("a", "c")))
        u2 = finder.utility(candidate, table.id_of(("a", "c", "x")))
        u3 = finder.utility(candidate, table.id_of(("a", "d")))
        u4 = finder.utility(candidate, table.id_of(("a", "d", "x")))
        assert u1 == pytest.approx(math.log(1 + 2 * 1) * r**2)
        assert u2 == pytest.approx(math.log(1 + 3 * 1) * r**3)
        assert u3 == pytest.approx(math.log(1 + 2 * 2) * r**2)
        assert u4 == pytest.approx(math.log(1 + 2 * 2) * r**3)
        assert u3 == max(u1, u2, u3, u4)

    def test_best_type_is_a_d(self, corpus, finder):
        pid = finder.find(("trie", "icde"))
        assert path_string(corpus, pid) == "/a/d"

    def test_example5_types(self, corpus, finder):
        # "tree icde" resolves to /a/c; "trie icdt" resolves to /a/d.
        assert path_string(corpus, finder.find(("tree", "icde"))) == "/a/c"
        assert path_string(corpus, finder.find(("trie", "icdt"))) == "/a/d"


class TestUtility:
    def test_zero_when_keyword_absent(self, corpus, finder):
        table = corpus.path_table
        # 'icdt' never occurs under /a/c.
        assert finder.utility(
            ("trie", "icdt"), table.id_of(("a", "c"))
        ) == 0.0

    def test_single_keyword(self, corpus, finder):
        table = corpus.path_table
        value = finder.utility(("trie",), table.id_of(("a", "d")))
        assert value == pytest.approx(math.log(1 + 2) * 0.8**2)


class TestFind:
    def test_no_shared_path_returns_none(self, corpus, finder):
        # trees (only under /a/b) and icdt (only under /a/d) never share
        # a type at depth >= 2.
        assert finder.find(("trees", "icdt")) is None

    def test_unknown_token_returns_none(self, corpus, finder):
        assert finder.find(("trie", "notaword")) is None

    def test_min_depth_excludes_root(self, corpus):
        # At min_depth=2 the only common type of trees+icde would be the
        # root /a, which is excluded...
        finder2 = ResultTypeFinder(
            corpus, ResultTypeConfig(reduction=0.8, min_depth=2)
        )
        assert finder2.find(("trees", "icde")) is None
        # ...but min_depth=1 admits it.
        finder1 = ResultTypeFinder(
            corpus, ResultTypeConfig(reduction=0.8, min_depth=1)
        )
        pid = finder1.find(("trees", "icde"))
        assert path_string(corpus, pid) == "/a"

    def test_cache(self, finder):
        first = finder.find(("trie", "icde"))
        assert finder.cached_candidates() == 1
        second = finder.find(("trie", "icde"))
        assert second == first
        assert finder.cached_candidates() == 1

    def test_none_results_cached_too(self, finder):
        finder.find(("trees", "icdt"))
        assert finder.cached_candidates() == 1

    def test_empty_candidate_returns_none(self, finder):
        assert finder.find(()) is None

    def test_deterministic_tie_break(self, corpus):
        # With reduction == 1 depth does not matter, making ties likely;
        # the finder must still return a stable answer.
        finder = ResultTypeFinder(
            corpus, ResultTypeConfig(reduction=1.0, min_depth=2)
        )
        assert finder.find(("trie", "icde")) == finder.find(
            ("trie", "icde")
        )


class TestConfigValidation:
    def test_reduction_bounds(self):
        with pytest.raises(ConfigurationError):
            ResultTypeConfig(reduction=0.0)
        with pytest.raises(ConfigurationError):
            ResultTypeConfig(reduction=1.5)

    def test_min_depth_bound(self):
        with pytest.raises(ConfigurationError):
            ResultTypeConfig(min_depth=0)

    def test_cache_size_bound(self):
        with pytest.raises(ConfigurationError):
            ResultTypeConfig(cache_size=0)
        # None (unbounded) and 1 are both legal.
        assert ResultTypeConfig(cache_size=None).cache_size is None
        assert ResultTypeConfig(cache_size=1).cache_size == 1


class TestCacheLRU:
    def bounded(self, corpus, size):
        return ResultTypeFinder(
            corpus,
            ResultTypeConfig(
                reduction=0.8, min_depth=2, cache_size=size
            ),
        )

    def test_eviction_keeps_bound(self, corpus):
        finder = self.bounded(corpus, 2)
        finder.find(("tree", "icde"))
        finder.find(("trie", "icde"))
        finder.find(("trie", "icdt"))
        assert finder.cached_candidates() == 2
        assert finder.cache_evictions == 1
        assert (0, ("tree", "icde")) not in finder._cache

    def test_hit_refreshes_recency(self, corpus):
        finder = self.bounded(corpus, 2)
        finder.find(("tree", "icde"))
        finder.find(("trie", "icde"))
        finder.find(("tree", "icde"))  # hit: most recently used now
        finder.find(("trie", "icdt"))  # evicts ("trie", "icde")
        assert (0, ("tree", "icde")) in finder._cache
        assert (0, ("trie", "icde")) not in finder._cache

    def test_evicted_candidate_recomputes(self, corpus):
        finder = self.bounded(corpus, 1)
        first = finder.find(("trie", "icde"))
        finder.find(("trie", "icdt"))  # evicts the first entry
        again = finder.find(("trie", "icde"))
        assert again == first
        assert finder.cache_misses == 3
        assert finder.cache_hits == 0

    def test_hit_miss_counters(self, corpus):
        finder = self.bounded(corpus, None)
        finder.find(("tree", "icde"))
        finder.find(("tree", "icde"))
        finder.find(("trie", "icdt"))
        assert finder.cache_misses == 2
        assert finder.cache_hits == 1
        assert finder.cache_evictions == 0

    def test_none_answers_participate_in_lru(self, corpus):
        # None ("no valid type") is a first-class cached value: a
        # second lookup is a hit, not a recompute.
        finder = self.bounded(corpus, 2)
        assert finder.find(("trees", "icdt")) is None
        assert finder.find(("trees", "icdt")) is None
        assert finder.cache_misses == 1
        assert finder.cache_hits == 1

    def test_unbounded_when_none(self, corpus):
        finder = self.bounded(corpus, None)
        finder.find(("tree", "icde"))
        finder.find(("trie", "icde"))
        finder.find(("trie", "icdt"))
        finder.find(("tree", "icdt"))
        assert finder.cached_candidates() == 4
        assert finder.cache_evictions == 0
