"""Direct tests for the naive reference cleaner."""

import pytest

from repro.core.config import XCleanConfig
from repro.core.naive import NaiveCleaner
from repro.exceptions import QueryError
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture(scope="module")
def cleaner(corpus):
    return NaiveCleaner(
        corpus, config=XCleanConfig(max_errors=1, gamma=None)
    )


class TestSuggest:
    def test_orders_by_score(self, cleaner):
        suggestions = cleaner.suggest("tree icdt")
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_result_types_attached(self, cleaner):
        types = {
            s.tokens: s.result_type
            for s in cleaner.suggest("tree icdt")
        }
        assert types[("trie", "icdt")] == "/a/d"
        assert types[("tree", "icde")] == "/a/c"

    def test_k_respected(self, cleaner):
        assert len(cleaner.suggest("tree icdt", k=1)) == 1

    def test_empty_query_raises(self, cleaner):
        with pytest.raises(QueryError):
            cleaner.suggest("the of")

    def test_unmatchable_keyword(self, cleaner):
        assert cleaner.suggest("tree zzzzzzz") == []


class TestScoreAll:
    def test_only_valid_candidates_scored(self, cleaner):
        scores = cleaner.score_all("tree icdt")
        assert set(scores) == {
            ("tree", "icde"),
            ("trie", "icde"),
            ("trie", "icdt"),
        }

    def test_evaluates_full_space(self, cleaner):
        cleaner.score_all("tree icdt")
        # Example 2: the Cartesian space has 6 candidates, all visited.
        assert cleaner.last_stats.candidates_evaluated == 6
        assert cleaner.last_stats.space_size == 6

    def test_reads_full_lists(self, corpus, cleaner):
        cleaner.score_all("tree icdt")
        # The naive scorer has no skipping: it touches postings per
        # candidate evaluation, far more than the single-pass algorithm.
        assert cleaner.last_stats.postings_read >= sum(
            len(corpus.inverted.list_for(t))
            for t in ("tree", "trees", "trie", "icde", "icdt")
        )

    def test_scores_positive(self, cleaner):
        for score in cleaner.score_all("tree icdt").values():
            assert score > 0.0
