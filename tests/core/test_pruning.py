"""Tests for the γ-bounded accumulator pool (Section V-D)."""

import pytest

from repro.core.pruning import AccumulatorPool
from repro.exceptions import ConfigurationError


class TestUnbounded:
    def test_accumulates_mass(self):
        pool = AccumulatorPool(None)
        pool.add(("a",), 0.5, 1.0, 10, 0)
        pool.add(("a",), 0.25, 1.0, 10, 0)
        entry = pool.entry(("a",))
        assert entry.mass == pytest.approx(0.75)

    def test_final_score_formula(self):
        pool = AccumulatorPool(None)
        pool.add(("a",), 0.5, 0.8, 4, 0)
        assert pool.final_scores()[("a",)] == pytest.approx(
            0.8 * 0.5 / 4
        )

    def test_no_evictions(self):
        pool = AccumulatorPool(None)
        for i in range(100):
            pool.add((f"c{i}",), 1.0, 1.0, 1, 0)
        assert len(pool) == 100
        assert pool.evictions == 0


class TestBounded:
    def test_capacity_respected(self):
        pool = AccumulatorPool(2)
        pool.add(("a",), 1.0, 1.0, 1, 0)
        pool.add(("b",), 2.0, 1.0, 1, 0)
        pool.add(("c",), 3.0, 1.0, 1, 0)
        assert len(pool) == 2

    def test_lowest_estimate_evicted(self):
        pool = AccumulatorPool(2)
        pool.add(("low",), 0.1, 1.0, 1, 0)
        pool.add(("high",), 5.0, 1.0, 1, 0)
        pool.add(("mid",), 1.0, 1.0, 1, 0)
        assert ("low",) not in pool
        assert ("high",) in pool
        assert ("mid",) in pool
        assert pool.evictions == 1

    def test_weak_incoming_dropped(self):
        pool = AccumulatorPool(2)
        pool.add(("a",), 5.0, 1.0, 1, 0)
        pool.add(("b",), 4.0, 1.0, 1, 0)
        pool.add(("weak",), 0.01, 1.0, 1, 0)
        assert ("weak",) not in pool
        assert len(pool) == 2

    def test_existing_candidate_never_blocked(self):
        pool = AccumulatorPool(1)
        pool.add(("a",), 1.0, 1.0, 1, 0)
        pool.add(("a",), 1.0, 1.0, 1, 0)
        assert pool.entry(("a",)).mass == pytest.approx(2.0)
        assert pool.evictions == 0

    def test_error_weight_affects_estimate(self):
        pool = AccumulatorPool(2)
        # Same mass but tiny error weight -> weakest.
        pool.add(("typo",), 1.0, 0.001, 1, 0)
        pool.add(("good",), 1.0, 1.0, 1, 0)
        pool.add(("new",), 1.0, 0.5, 1, 0)
        assert ("typo",) not in pool

    def test_entity_count_normalizes_estimate(self):
        pool = AccumulatorPool(2)
        # Equal mass over many entities is a weaker signal.
        pool.add(("diluted",), 1.0, 1.0, 1000, 0)
        pool.add(("focused",), 1.0, 1.0, 2, 0)
        pool.add(("new",), 1.0, 1.0, 10, 0)
        assert ("diluted",) not in pool

    def test_evicted_candidate_restarts_from_zero(self):
        pool = AccumulatorPool(1)
        pool.add(("a",), 1.0, 1.0, 1, 0)
        pool.add(("b",), 5.0, 1.0, 1, 0)  # evicts a
        pool.add(("a",), 10.0, 1.0, 1, 0)  # evicts b, fresh accumulator
        assert pool.entry(("a",)).mass == pytest.approx(10.0)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            AccumulatorPool(0)


class TestEvictionTies:
    """Tie-breaking of the eviction scan is deterministic by design."""

    def test_incoming_tie_evicts_existing(self):
        # estimate(incoming) == estimate(weakest victim): the victim
        # goes (<=, newer data wins) and the newcomer is admitted.
        pool = AccumulatorPool(1)
        pool.add(("a",), 1.0, 1.0, 1, 0)
        pool.add(("b",), 1.0, 1.0, 1, 0)
        assert ("a",) not in pool
        assert ("b",) in pool
        assert pool.evictions == 1

    def test_tied_victims_evict_first_inserted(self):
        # Among equally weak entries the strict < scan keeps the first
        # candidate seen as victim — insertion order decides.
        pool = AccumulatorPool(2)
        pool.add(("first",), 1.0, 1.0, 1, 0)
        pool.add(("second",), 1.0, 1.0, 1, 0)
        pool.add(("new",), 2.0, 1.0, 1, 0)
        assert ("first",) not in pool
        assert ("second",) in pool
        assert ("new",) in pool

    def test_zero_estimate_tie_still_admits_newcomer(self):
        # Both sides estimate 0.0 (zero normalizer): eviction still
        # happens, so the table never deadlocks on degenerate scores.
        pool = AccumulatorPool(1)
        pool.add(("stale",), 1.0, 1.0, 0, 0)
        pool.add(("fresh",), 1.0, 1.0, 0, 0)
        assert ("stale",) not in pool
        assert ("fresh",) in pool
        assert len(pool) == 1


class TestTopK:
    def test_ordering(self):
        pool = AccumulatorPool(None)
        pool.add(("b",), 2.0, 1.0, 1, 0)
        pool.add(("a",), 3.0, 1.0, 1, 0)
        pool.add(("c",), 1.0, 1.0, 1, 0)
        top = pool.top_k(2)
        assert [t[0] for t in top] == [("a",), ("b",)]

    def test_tie_breaks_lexicographic(self):
        pool = AccumulatorPool(None)
        pool.add(("zeta",), 1.0, 1.0, 1, 0)
        pool.add(("alpha",), 1.0, 1.0, 1, 0)
        top = pool.top_k(2)
        assert [t[0] for t in top] == [("alpha",), ("zeta",)]

    def test_k_larger_than_pool(self):
        pool = AccumulatorPool(None)
        pool.add(("a",), 1.0, 1.0, 1, 0)
        assert len(pool.top_k(10)) == 1

    def test_zero_entity_count_scores_zero(self):
        pool = AccumulatorPool(None)
        pool.add(("a",), 1.0, 1.0, 0, 0)
        assert pool.final_scores()[("a",)] == 0.0


class TestShewchukPartials:
    """The expansion arithmetic behind the scatter-gather merge."""

    def _values(self):
        import random

        rng = random.Random(417)
        return [
            rng.uniform(0.0, 1.0) * 10.0 ** rng.randint(-14, 2)
            for _ in range(200)
        ]

    def test_expansion_fsum_is_correctly_rounded(self):
        import math

        from repro.core.pruning import add_partial

        values = self._values()
        partials: list[float] = []
        for value in values:
            add_partial(partials, value)
        assert math.fsum(partials) == math.fsum(values)

    def test_fold_order_independence(self):
        import math

        from repro.core.pruning import add_partial

        values = self._values()
        forward: list[float] = []
        for value in values:
            add_partial(forward, value)
        backward: list[float] = []
        for value in reversed(values):
            add_partial(backward, value)
        assert math.fsum(forward) == math.fsum(backward)

    def test_split_expansions_concatenate_exactly(self):
        """Per-shard expansions merged via extend_mass match one pool.

        This is the exactness argument of the sharded gather: entity
        masses folded on separate shards, then concatenated, give the
        bit-identical total of a single-index fold.
        """
        import math

        from repro.core.pruning import Accumulator, add_partial

        values = self._values()
        whole: list[float] = []
        for value in values:
            add_partial(whole, value)
        left = Accumulator(values[0], 1.0, 4.0, 0)
        right = Accumulator(values[97], 1.0, 4.0, 0)
        for value in values[1:97]:
            left.add_mass(value)
        for value in values[98:]:
            right.add_mass(value)
        left.extend_mass(right.partials)
        assert left.mass == math.fsum(whole)
