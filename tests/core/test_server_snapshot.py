"""Snapshot-backed worker pools and the pool_init_bytes metric."""

import pytest

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.index.corpus import build_corpus_index
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument

QUERIES = ["confernce", "xml daabases", "keyword serach", "confernce"]


@pytest.fixture
def corpus():
    return build_corpus_index(
        XMLDocument(paper_example_tree(), name="paper-example")
    )


@pytest.fixture
def snapshot_corpus(corpus, tmp_path):
    path = str(tmp_path / "index.xcs3")
    build_snapshot(corpus, path)
    return load_snapshot(path)


def _rows(batches):
    return [
        [(s.tokens, s.score, s.result_type) for s in suggestions]
        for suggestions in batches
    ]


class TestSnapshotPool:
    def test_parallel_batch_matches_pickled_pool(
        self, corpus, snapshot_corpus
    ):
        config = XCleanConfig(max_errors=2)
        with SuggestionService(corpus, config=config) as pickled, \
                SuggestionService(
                    snapshot_corpus, config=config
                ) as snapshot:
            expected = pickled.suggest_batch(QUERIES, 5, workers=2)
            actual = snapshot.suggest_batch(QUERIES, 5, workers=2)
            assert _rows(actual) == _rows(expected)
            assert snapshot.stats.degraded_queries == 0

    def test_init_payload_constant_for_snapshot_pool(
        self, corpus, snapshot_corpus
    ):
        config = XCleanConfig(max_errors=2)
        with SuggestionService(
            snapshot_corpus, config=config
        ) as service:
            service.suggest_batch(QUERIES[:1], 5, workers=2)
            snapshot_bytes = service.stats.pool_init_bytes
        with SuggestionService(corpus, config=config) as service:
            service.suggest_batch(QUERIES[:1], 5, workers=2)
            pickled_bytes = service.stats.pool_init_bytes
        # The snapshot payload is a path + config; the fallback pickles
        # the whole corpus.  Both are recorded, only one is O(corpus).
        assert 0 < snapshot_bytes < 4096
        assert pickled_bytes > snapshot_bytes

    def test_pool_init_bytes_counter_exported(self, snapshot_corpus):
        with SuggestionService(
            snapshot_corpus, config=XCleanConfig(max_errors=2)
        ) as service:
            service.suggest_batch(QUERIES[:1], 5, workers=2)
            counters = service.metrics().as_dict()["counters"]
        assert counters["pool_init_bytes"] == (
            service.stats.pool_init_bytes
        )

    def test_serial_service_over_snapshot(self, snapshot_corpus):
        with SuggestionService(
            snapshot_corpus, config=XCleanConfig(max_errors=2)
        ) as service:
            batches = service.suggest_batch(QUERIES, 5)
            assert len(batches) == len(QUERIES)
            assert service.stats.result_cache_hits >= 1  # repeated query
            assert service.stats.pool_init_bytes == 0  # no pool started
