"""End-to-end integration: datasets → index → suggesters → metrics."""

import pytest

from repro.core.naive import NaiveCleaner
from repro.core.config import XCleanConfig
from repro.eval.experiments import (
    dblp_setting,
    eps_for,
    wiki_setting,
)
from repro.eval.runner import evaluate_suggester
from repro.index import storage


@pytest.fixture(scope="module")
def dblp():
    return dblp_setting("small")


@pytest.fixture(scope="module")
def wiki():
    return wiki_setting("small")


class TestWorkloadQuality:
    def test_xclean_beats_py08_on_rule(self, dblp):
        # RULE is where the baselines separate decisively even at the
        # tiny test scale (the RAND gap needs the benchmark scale).
        eps = eps_for("RULE")
        records = dblp.workloads["RULE"]
        xclean = evaluate_suggester(dblp.xclean(max_errors=eps), records)
        py08 = evaluate_suggester(dblp.py08(max_errors=eps), records)
        assert xclean.mrr > py08.mrr

    def test_xclean_beats_py08_on_clean(self, dblp):
        records = dblp.workloads["CLEAN"]
        xclean = evaluate_suggester(dblp.xclean(), records)
        py08 = evaluate_suggester(dblp.py08(), records)
        assert xclean.mrr > py08.mrr

    def test_xclean_recovers_most_rand_queries(self, dblp):
        result = evaluate_suggester(
            dblp.xclean(), dblp.workloads["RAND"]
        )
        assert result.mrr >= 0.6

    def test_clean_queries_not_broken(self, dblp):
        result = evaluate_suggester(
            dblp.xclean(), dblp.workloads["CLEAN"]
        )
        assert result.mrr >= 0.7

    def test_wiki_pipeline(self, wiki):
        result = evaluate_suggester(
            wiki.xclean(), wiki.workloads["RAND"]
        )
        assert result.mrr >= 0.6

    def test_rule_uses_larger_eps(self, wiki):
        eps = eps_for("RULE")
        result = evaluate_suggester(
            wiki.xclean(max_errors=eps), wiki.workloads["RULE"]
        )
        assert result.mrr >= 0.5

    def test_se1_silent_on_clean(self, dblp):
        result = evaluate_suggester(
            dblp.se1(), dblp.workloads["CLEAN"], k=1
        )
        assert result.mrr == 1.0


class TestSuggestionValidity:
    """The headline guarantee: suggestions have non-empty results."""

    def test_every_suggestion_has_results(self, dblp):
        suggester = dblp.xclean(gamma=None)
        for record in dblp.workloads["RAND"][:6]:
            for suggestion in suggester.suggest(record.dirty_text, 5):
                hit = any(
                    all(
                        token in entity.subtree_text().split()
                        for token in suggestion.tokens
                    )
                    for entity in dblp.document.root.children
                )
                assert hit, suggestion.text


class TestAlgorithmEquivalenceOnRealData:
    def test_xclean_matches_naive_on_dblp(self, dblp):
        fast = dblp.xclean(gamma=None)
        slow = NaiveCleaner(
            dblp.corpus,
            generator=dblp.generator,
            config=XCleanConfig(max_errors=2, gamma=None),
        )
        for record in dblp.workloads["RAND"][:5]:
            fast_scores = fast.score_all(record.dirty_text)
            naive_scores = {
                c: s
                for c, s in slow.score_all(record.dirty_text).items()
                if s > 0
            }
            assert set(fast_scores) == set(naive_scores)
            for candidate, score in fast_scores.items():
                assert score == pytest.approx(
                    naive_scores[candidate], rel=1e-9
                )

    def test_slca_runs_on_both_datasets(self, dblp, wiki):
        for setting in (dblp, wiki):
            suggester = setting.xclean_slca()
            record = setting.workloads["RAND"][0]
            suggestions = suggester.suggest(record.dirty_text, 5)
            assert isinstance(suggestions, list)


class TestIndexPersistenceIntegration:
    def test_loaded_index_gives_identical_suggestions(self, dblp, tmp_path):
        path = str(tmp_path / "dblp.xci")
        storage.save_index(dblp.corpus, path)
        loaded = storage.load_index(path)
        from repro.core.cleaner import XCleanSuggester

        original = dblp.xclean(gamma=None)
        reloaded = XCleanSuggester(
            loaded, config=XCleanConfig(max_errors=2, gamma=None)
        )
        for record in dblp.workloads["RAND"][:4]:
            a = [
                (s.tokens, pytest.approx(s.score))
                for s in original.suggest(record.dirty_text, 5)
            ]
            b = [
                (s.tokens, s.score)
                for s in reloaded.suggest(record.dirty_text, 5)
            ]
            assert b == a


class TestDeterminism:
    def test_settings_are_cached(self):
        assert dblp_setting("small") is dblp_setting("small")

    def test_suggestions_deterministic_across_instances(self, dblp):
        record = dblp.workloads["RULE"][0]
        first = dblp.xclean().suggest(record.dirty_text, 5)
        second = dblp.xclean().suggest(record.dirty_text, 5)
        assert [s.tokens for s in first] == [s.tokens for s in second]
