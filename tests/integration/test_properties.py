"""Cross-module property tests on randomly generated documents."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.index import storage
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import build_tree
from repro.xmltree.document import XMLDocument
from repro.xmltree.parser import parse_document, serialize

TOKENS = ["tree", "trie", "icde", "icdt", "data", "mining", "query"]
LABELS = ["sec", "div", "item"]


@st.composite
def random_document(draw):
    """A random 2-4 level document with text leaves."""
    sections = draw(
        st.lists(
            st.tuples(
                st.sampled_from(LABELS),
                st.lists(
                    st.tuples(
                        st.sampled_from(LABELS),
                        st.lists(
                            st.sampled_from(TOKENS),
                            min_size=1,
                            max_size=4,
                        ),
                    ),
                    min_size=1,
                    max_size=3,
                ),
            ),
            min_size=1,
            max_size=4,
        )
    )
    spec = (
        "root",
        [
            (
                label,
                [
                    (leaf_label, " ".join(words))
                    for leaf_label, words in leaves
                ],
            )
            for label, leaves in sections
        ],
    )
    return XMLDocument(build_tree(spec))


class TestStorageRoundTripProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_document())
    def test_index_roundtrip(self, document):
        corpus = build_corpus_index(document)
        loaded = storage.loads(storage.dumps(corpus))
        assert loaded.path_node_counts == corpus.path_node_counts
        assert loaded.subtree_token_counts == corpus.subtree_token_counts
        for token in corpus.inverted.tokens():
            assert list(loaded.inverted.list_for(token)) == list(
                corpus.inverted.list_for(token)
            )
            assert dict(loaded.path_index.counts_for(token)) == dict(
                corpus.path_index.counts_for(token)
            )


class TestParserRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(random_document())
    def test_serialize_parse_identity(self, document):
        reparsed = parse_document(serialize(document.root))
        original = [
            (n.label, n.text) for n in document.root.iter_subtree()
        ]
        restored = [(n.label, n.text) for n in reparsed.iter_subtree()]
        assert restored == original


class TestNonEmptyResultsProperty:
    """The paper's headline guarantee, on arbitrary documents."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        random_document(),
        st.lists(st.sampled_from(TOKENS), min_size=1, max_size=2),
    )
    def test_every_suggestion_has_results(self, document, query_tokens):
        corpus = build_corpus_index(document)
        suggester = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        )
        suggestions = suggester.suggest(" ".join(query_tokens), k=10)
        for suggestion in suggestions:
            # Some node of the claimed result type contains all tokens.
            found = False
            for node, path in document.iter_with_paths():
                if "/" + "/".join(path) != suggestion.result_type:
                    continue
                text = set(node.subtree_text().split())
                if all(t in text for t in suggestion.tokens):
                    found = True
                    break
            assert found, suggestion

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        random_document(),
        st.lists(st.sampled_from(TOKENS), min_size=1, max_size=2),
        st.integers(min_value=1, max_value=5),
    )
    def test_pruned_results_subset_of_exact(
        self, document, query_tokens, gamma
    ):
        corpus = build_corpus_index(document)
        query = " ".join(query_tokens)
        exact = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=None)
        ).score_all(query)
        pruned = XCleanSuggester(
            corpus, config=XCleanConfig(max_errors=1, gamma=gamma)
        ).score_all(query)
        assert set(pruned) <= set(exact)
        for candidate, score in pruned.items():
            # A surviving accumulator saw at most all of the exact mass.
            assert score <= exact[candidate] * (1 + 1e-9)
