"""Tests for the xclean command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "dblp", "--out", "x.xml"]
        )
        assert args.command == "generate"
        assert args.dataset == "dblp"


class TestPipeline:
    def test_generate_index_suggest(self, tmp_path, capsys):
        xml_path = str(tmp_path / "corpus.xml")
        index_path = str(tmp_path / "corpus.xci")

        assert main(
            [
                "generate",
                "--dataset",
                "dblp",
                "--out",
                xml_path,
                "--size",
                "80",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "nodes" in out

        assert main(["index", "--xml", xml_path, "--out", index_path]) == 0
        out = capsys.readouterr().out
        assert "postings" in out

        assert main(
            [
                "suggest",
                "--index",
                index_path,
                "--query",
                "datt",
                "-k",
                "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_binary_index_pipeline(self, tmp_path, capsys):
        xml_path = str(tmp_path / "c.xml")
        index_path = str(tmp_path / "c.xcib")
        assert main(
            ["generate", "--dataset", "dblp", "--out", xml_path,
             "--size", "60"]
        ) == 0
        assert main(
            ["index", "--xml", xml_path, "--out", index_path,
             "--format", "binary"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["suggest", "--index", index_path, "--query", "datt",
             "-k", "2"]
        ) == 0
        assert capsys.readouterr().out.strip()

    def test_semantics_options(self, tmp_path, capsys):
        xml_path = str(tmp_path / "s.xml")
        index_path = str(tmp_path / "s.xci")
        main(["generate", "--dataset", "dblp", "--out", xml_path,
              "--size", "60"])
        main(["index", "--xml", xml_path, "--out", index_path])
        capsys.readouterr()
        for semantics in ("slca", "elca"):
            assert main(
                ["suggest", "--index", index_path, "--query", "datt",
                 "--semantics", semantics]
            ) == 0
        assert main(
            ["suggest", "--index", index_path, "--query", "datt",
             "--prior", "length"]
        ) == 0

    def test_generate_wiki(self, tmp_path, capsys):
        xml_path = str(tmp_path / "wiki.xml")
        assert main(
            ["generate", "--dataset", "wiki", "--out", xml_path,
             "--size", "10"]
        ) == 0

    def test_suggest_missing_index_fails(self, tmp_path, capsys):
        code = main(
            [
                "suggest",
                "--index",
                str(tmp_path / "missing.xci"),
                "--query",
                "tree",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_index_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.xci"
        bad.write_text("not an index\n")
        code = main(
            ["suggest", "--index", str(bad), "--query", "tree"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_evaluate_small(self, capsys):
        assert main(
            ["evaluate", "--dataset", "dblp", "--scale", "small"]
        ) == 0
        out = capsys.readouterr().out
        assert "MRR" in out
        assert "DBLP-CLEAN" in out or "CLEAN" in out


class TestSearchCommand:
    def test_search_pipeline(self, tmp_path, capsys):
        xml_path = str(tmp_path / "q.xml")
        index_path = str(tmp_path / "q.xci")
        main(["generate", "--dataset", "dblp", "--out", xml_path,
              "--size", "80"])
        main(["index", "--xml", xml_path, "--out", index_path])
        capsys.readouterr()
        assert main(
            ["search", "--index", index_path, "--query", "journal",
             "--xml", xml_path, "-k", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "entity" in out or "no results" in out

    def test_search_without_snippets(self, tmp_path, capsys):
        xml_path = str(tmp_path / "r.xml")
        index_path = str(tmp_path / "r.xci")
        main(["generate", "--dataset", "dblp", "--out", xml_path,
              "--size", "80"])
        main(["index", "--xml", xml_path, "--out", index_path])
        capsys.readouterr()
        assert main(
            ["search", "--index", index_path, "--query", "journal"]
        ) == 0
