"""Tests for the xclean command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.export import validate_chrome_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "dblp", "--out", "x.xml"]
        )
        assert args.command == "generate"
        assert args.dataset == "dblp"


class TestPipeline:
    def test_generate_index_suggest(self, tmp_path, capsys):
        xml_path = str(tmp_path / "corpus.xml")
        index_path = str(tmp_path / "corpus.xci")

        assert main(
            [
                "generate",
                "--dataset",
                "dblp",
                "--out",
                xml_path,
                "--size",
                "80",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "nodes" in out

        assert main(["index", "--xml", xml_path, "--out", index_path]) == 0
        out = capsys.readouterr().out
        assert "postings" in out

        assert main(
            [
                "suggest",
                "--index",
                index_path,
                "--query",
                "datt",
                "-k",
                "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_binary_index_pipeline(self, tmp_path, capsys):
        xml_path = str(tmp_path / "c.xml")
        index_path = str(tmp_path / "c.xcib")
        assert main(
            ["generate", "--dataset", "dblp", "--out", xml_path,
             "--size", "60"]
        ) == 0
        assert main(
            ["index", "--xml", xml_path, "--out", index_path,
             "--format", "binary"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["suggest", "--index", index_path, "--query", "datt",
             "-k", "2"]
        ) == 0
        assert capsys.readouterr().out.strip()

    def test_semantics_options(self, tmp_path, capsys):
        xml_path = str(tmp_path / "s.xml")
        index_path = str(tmp_path / "s.xci")
        main(["generate", "--dataset", "dblp", "--out", xml_path,
              "--size", "60"])
        main(["index", "--xml", xml_path, "--out", index_path])
        capsys.readouterr()
        for semantics in ("slca", "elca"):
            assert main(
                ["suggest", "--index", index_path, "--query", "datt",
                 "--semantics", semantics]
            ) == 0
        assert main(
            ["suggest", "--index", index_path, "--query", "datt",
             "--prior", "length"]
        ) == 0

    def test_generate_wiki(self, tmp_path, capsys):
        xml_path = str(tmp_path / "wiki.xml")
        assert main(
            ["generate", "--dataset", "wiki", "--out", xml_path,
             "--size", "10"]
        ) == 0

    def test_suggest_missing_index_fails(self, tmp_path, capsys):
        code = main(
            [
                "suggest",
                "--index",
                str(tmp_path / "missing.xci"),
                "--query",
                "tree",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_index_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.xci"
        bad.write_text("not an index\n")
        code = main(
            ["suggest", "--index", str(bad), "--query", "tree"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_evaluate_small(self, capsys):
        assert main(
            ["evaluate", "--dataset", "dblp", "--scale", "small"]
        ) == 0
        out = capsys.readouterr().out
        assert "MRR" in out
        assert "DBLP-CLEAN" in out or "CLEAN" in out


@pytest.fixture(scope="module")
def built_index(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_obs")
    xml_path = str(root / "corpus.xml")
    index_path = str(root / "corpus.xci")
    assert main(
        ["generate", "--dataset", "dblp", "--out", xml_path,
         "--size", "80"]
    ) == 0
    assert main(["index", "--xml", xml_path, "--out", index_path]) == 0
    return index_path


class TestExplainCommand:
    def test_explain_table(self, built_index, capsys):
        capsys.readouterr()
        assert main(
            ["explain", "--index", built_index, "--query", "datt",
             "-k", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "P(Q|C)" in out
        assert "U(C," in out

    def test_explain_json_reconstructs(self, built_index, capsys):
        capsys.readouterr()
        assert main(
            ["explain", "--index", built_index, "--query", "datt",
             "-k", "3", "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["query"] == "datt"
        assert data["suggestions"], "expected candidates"
        top = data["suggestions"][0]
        assert top["reconstructed_score"] == pytest.approx(
            top["score"], rel=1e-9
        )

    def test_explain_tuple_engine(self, built_index, capsys):
        capsys.readouterr()
        assert main(
            ["explain", "--index", built_index, "--query", "datt",
             "--engine", "tuple", "--format", "json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["engine"] == "tuple"


class TestTraceCommand:
    def test_trace_text(self, built_index, capsys):
        capsys.readouterr()
        assert main(
            ["trace", "--index", built_index, "--query", "datt"]
        ) == 0
        out = capsys.readouterr().out
        assert "suggest" in out
        assert "ms" in out

    def test_trace_chrome_validates(self, built_index, capsys):
        capsys.readouterr()
        assert main(
            ["trace", "--index", built_index, "--query", "datt",
             "--format", "chrome"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert validate_chrome_trace(data) == []
        assert any(
            e["name"] == "suggest" for e in data["traceEvents"]
        )

    def test_trace_jsonl_to_file(self, built_index, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        capsys.readouterr()
        assert main(
            ["trace", "--index", built_index, "--query", "datt",
             "--format", "jsonl", "--out", str(out_path)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        record = json.loads(out_path.read_text().splitlines()[0])
        assert record["name"] == "suggest"


class TestBatchCommand:
    def make_queries(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("datt\njournal\ndatt\n")
        return str(path)

    def test_batch_table_reports_partials(
        self, built_index, tmp_path, capsys
    ):
        capsys.readouterr()
        assert main(
            ["batch", "--index", built_index, "--queries",
             self.make_queries(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "partial" in out
        assert "q/s" in out

    def test_batch_json_per_query_stats(
        self, built_index, tmp_path, capsys
    ):
        capsys.readouterr()
        assert main(
            ["batch", "--index", built_index, "--queries",
             self.make_queries(tmp_path), "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["queries"]) == 3
        for entry in data["queries"]:
            assert {"query", "suggestions", "partial",
                    "result_cache_hits", "result_cache_misses",
                    "trace_id"} <= set(entry)
        first, _, third = data["queries"]
        assert first["result_cache_misses"] == 1
        assert third["result_cache_hits"] == 1  # duplicate of first
        assert first["trace_id"]
        assert data["service"]["queries_served"] == 3
        assert data["elapsed_s"] >= 0.0
        assert data["qps"] >= 0.0


class TestSearchCommand:
    def test_search_pipeline(self, tmp_path, capsys):
        xml_path = str(tmp_path / "q.xml")
        index_path = str(tmp_path / "q.xci")
        main(["generate", "--dataset", "dblp", "--out", xml_path,
              "--size", "80"])
        main(["index", "--xml", xml_path, "--out", index_path])
        capsys.readouterr()
        assert main(
            ["search", "--index", index_path, "--query", "journal",
             "--xml", xml_path, "-k", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "entity" in out or "no results" in out

    def test_search_without_snippets(self, tmp_path, capsys):
        xml_path = str(tmp_path / "r.xml")
        index_path = str(tmp_path / "r.xci")
        main(["generate", "--dataset", "dblp", "--out", xml_path,
              "--size", "80"])
        main(["index", "--xml", xml_path, "--out", index_path])
        capsys.readouterr()
        assert main(
            ["search", "--index", index_path, "--query", "journal"]
        ) == 0
