"""Every example script must run cleanly (the examples are API docs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda p: p.stem
)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_SCRIPTS}
    assert {
        "quickstart",
        "dblp_bibliography",
        "wikipedia_search",
        "bias_demo",
        "space_errors_demo",
        "clean_and_search",
        "phonetic_errors",
    } <= names


def test_quickstart_output_shows_suggestions():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "trie icdt" in completed.stdout
    assert "result type=/a/d" in completed.stdout
