"""Tests for the benchmark regression gate (benchmarks/compare.py).

``benchmarks/`` is not a package, so the module is loaded straight
from its file path.  Tests build tiny baseline/candidate directories
and check the verdict matrix: ok, regression (both directions),
skipped (scale mismatch, missing baseline), missing candidate value.
"""

import importlib.util
import json
import os

import pytest

_COMPARE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "compare.py"
)


def _load_compare():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", os.path.abspath(_COMPARE_PATH)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare = _load_compare()


def write_bench(directory, name, payload):
    path = directory / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def hotpath(speedup, scale="default"):
    return {"scale": scale, "merge": {"speedup": speedup}}


def load_bench(p99, scale="default"):
    return {"scale": scale, "open_loop": {"p99_ms": p99}}


def update_bench(p50, scale="small"):
    return {"scale": scale, "ack": {"ack_p50_ms": p50}}


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    candidate = tmp_path / "candidate"
    baseline.mkdir()
    candidate.mkdir()
    return baseline, candidate


class TestDig:
    def test_walks_nested_keys(self):
        assert compare.dig({"a": {"b": {"c": 3}}}, "a.b.c") == 3

    def test_missing_key_is_none(self):
        assert compare.dig({"a": {}}, "a.b.c") is None

    def test_non_dict_intermediate_is_none(self):
        assert compare.dig({"a": 5}, "a.b") is None


class TestCompareDirs:
    def test_identical_results_are_ok(self, dirs):
        baseline, candidate = dirs
        for directory in dirs:
            write_bench(directory, "BENCH_hotpath.json", hotpath(20.0))
            write_bench(directory, "BENCH_load.json", load_bench(9.0))
            write_bench(
                directory, "BENCH_update.json", update_bench(4.0)
            )
        report = compare.compare_dirs(str(baseline), str(candidate))
        assert report["regressions"] == []
        assert {r["status"] for r in report["results"]} == {"ok"}

    def test_higher_is_better_regression(self, dirs):
        baseline, candidate = dirs
        write_bench(baseline, "BENCH_hotpath.json", hotpath(20.0))
        # 40% slowdown on a higher-is-better metric.
        write_bench(candidate, "BENCH_hotpath.json", hotpath(12.0))
        report = compare.compare_dirs(str(baseline), str(candidate))
        (bad,) = report["regressions"]
        assert bad["metric"] == "merge.speedup"
        assert bad["ratio"] == pytest.approx(0.6)

    def test_lower_is_better_regression(self, dirs):
        baseline, candidate = dirs
        write_bench(baseline, "BENCH_load.json", load_bench(10.0))
        write_bench(candidate, "BENCH_load.json", load_bench(13.0))
        report = compare.compare_dirs(str(baseline), str(candidate))
        (bad,) = report["regressions"]
        assert bad["metric"] == "open_loop.p99_ms"
        assert bad["ratio"] == pytest.approx(1.3)

    def test_within_threshold_noise_is_ok(self, dirs):
        baseline, candidate = dirs
        write_bench(baseline, "BENCH_load.json", load_bench(10.0))
        write_bench(candidate, "BENCH_load.json", load_bench(11.0))
        report = compare.compare_dirs(str(baseline), str(candidate))
        assert report["regressions"] == []

    def test_custom_threshold(self, dirs):
        baseline, candidate = dirs
        write_bench(baseline, "BENCH_load.json", load_bench(10.0))
        write_bench(candidate, "BENCH_load.json", load_bench(11.0))
        report = compare.compare_dirs(
            str(baseline), str(candidate), threshold=0.05
        )
        assert len(report["regressions"]) == 1

    def test_scale_mismatch_is_skipped_not_failed(self, dirs):
        baseline, candidate = dirs
        write_bench(baseline, "BENCH_load.json", load_bench(10.0))
        write_bench(
            candidate, "BENCH_load.json",
            load_bench(99.0, scale="small"),
        )
        report = compare.compare_dirs(str(baseline), str(candidate))
        assert report["regressions"] == []
        statuses = {
            r["status"] for r in report["results"]
            if r["file"] == "BENCH_load.json"
        }
        assert statuses == {"skipped"}

    def test_missing_baseline_file_is_skipped(self, dirs):
        baseline, candidate = dirs
        write_bench(candidate, "BENCH_load.json", load_bench(10.0))
        report = compare.compare_dirs(str(baseline), str(candidate))
        assert report["regressions"] == []

    def test_missing_candidate_value_is_missing(self, dirs):
        baseline, candidate = dirs
        write_bench(baseline, "BENCH_load.json", load_bench(10.0))
        write_bench(
            candidate, "BENCH_load.json",
            {"scale": "default", "open_loop": {}},
        )
        report = compare.compare_dirs(str(baseline), str(candidate))
        statuses = {
            r["status"] for r in report["results"]
            if r["file"] == "BENCH_load.json"
        }
        assert statuses == {"missing"}


class TestMain:
    def _populate(self, dirs, candidate_p99):
        baseline, candidate = dirs
        write_bench(baseline, "BENCH_load.json", load_bench(10.0))
        write_bench(
            candidate, "BENCH_load.json", load_bench(candidate_p99)
        )
        return baseline, candidate

    def test_exit_zero_when_clean(self, dirs, capsys):
        baseline, candidate = self._populate(dirs, 10.0)
        code = compare.main(
            ["--baseline", str(baseline), "--candidate", str(candidate)]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, dirs, capsys):
        baseline, candidate = self._populate(dirs, 20.0)
        code = compare.main(
            ["--baseline", str(baseline), "--candidate", str(candidate)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_out_writes_json_artifact(self, dirs, tmp_path):
        baseline, candidate = self._populate(dirs, 10.0)
        out = tmp_path / "diff.json"
        compare.main(
            [
                "--baseline", str(baseline),
                "--candidate", str(candidate),
                "--out", str(out),
            ]
        )
        artifact = json.loads(out.read_text(encoding="utf-8"))
        assert artifact["threshold"] == 0.15
        assert artifact["results"]

    def test_committed_baseline_self_diffs_clean(self, capsys):
        out_dir = os.path.abspath(
            os.path.join(
                os.path.dirname(_COMPARE_PATH), "out"
            )
        )
        code = compare.main(
            ["--baseline", out_dir, "--candidate", out_dir]
        )
        assert code == 0
