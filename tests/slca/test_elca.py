"""Tests for ELCA computation against the XRANK-definition brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slca.elca import (
    containing_ancestors,
    elca,
    elca_brute_force,
)
from repro.slca.multiway import slca

deweys = st.lists(
    st.integers(min_value=1, max_value=3), min_size=1, max_size=4
).map(lambda parts: (1,) + tuple(parts))

dewey_lists = st.lists(deweys, min_size=1, max_size=8).map(
    lambda codes: sorted(set(codes))
)


class TestManualCases:
    def test_single_subtree(self):
        lists = [[(1, 2, 1)], [(1, 2, 3)]]
        assert elca(lists) == [(1, 2)]

    def test_root_only_connection(self):
        lists = [[(1, 1, 1)], [(1, 2, 1)]]
        assert elca(lists) == [(1,)]

    def test_ancestor_with_exclusive_witness(self):
        # 1.1 contains both keywords (via 1.1.1); the root additionally
        # has exclusive witnesses a@1.2 and b@1.3 -> both are ELCAs.
        a = [(1, 1, 1, 1), (1, 2)]
        b = [(1, 1, 1, 2), (1, 3)]
        assert elca([a, b]) == [(1,), (1, 1, 1)]

    def test_ancestor_without_exclusive_witness_excluded(self):
        # All occurrences sit under the single deep ELCA; ancestors
        # have nothing exclusive.
        a = [(1, 1, 1, 1)]
        b = [(1, 1, 1, 2)]
        assert elca([a, b]) == [(1, 1, 1)]

    def test_elca_superset_of_slca(self):
        a = [(1, 1, 1, 1), (1, 2)]
        b = [(1, 1, 1, 2), (1, 3)]
        assert set(slca([a, b])) <= set(elca([a, b]))

    def test_empty_inputs(self):
        assert elca([]) == []
        assert elca([[(1, 1)], []]) == []

    def test_containing_ancestors(self):
        assert containing_ancestors([(1, 2, 3)]) == [
            (1,),
            (1, 2),
            (1, 2, 3),
        ]


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(dewey_lists, min_size=1, max_size=3))
    def test_matches_brute_force(self, lists):
        assert elca(lists) == elca_brute_force(lists)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(dewey_lists, min_size=1, max_size=3))
    def test_superset_of_slca(self, lists):
        assert set(slca(lists)) <= set(elca(lists))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(dewey_lists, min_size=2, max_size=3))
    def test_every_elca_contains_all_keywords(self, lists):
        for node in elca(lists):
            for lst in lists:
                assert any(code[: len(node)] == node for code in lst)
