"""Tests for multi-way SLCA against the brute-force reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slca.multiway import remove_ancestors, slca, slca_brute_force

deweys = st.lists(
    st.integers(min_value=1, max_value=3), min_size=1, max_size=4
).map(lambda parts: (1,) + tuple(parts))

dewey_lists = st.lists(deweys, min_size=1, max_size=8).map(
    lambda codes: sorted(set(codes))
)


class TestRemoveAncestors:
    def test_keeps_deepest(self):
        assert remove_ancestors([(1,), (1, 2), (1, 2, 3)]) == [(1, 2, 3)]

    def test_siblings_kept(self):
        assert remove_ancestors([(1, 1), (1, 2)]) == [(1, 1), (1, 2)]

    def test_duplicates_removed(self):
        assert remove_ancestors([(1, 1), (1, 1)]) == [(1, 1)]

    def test_mixed(self):
        codes = [(1,), (1, 1), (1, 2), (1, 2, 1)]
        assert remove_ancestors(codes) == [(1, 1), (1, 2, 1)]

    def test_empty(self):
        assert remove_ancestors([]) == []


class TestSLCAManual:
    def test_single_list_returns_nodes(self):
        lists = [[(1, 1), (1, 2)]]
        assert slca(lists) == [(1, 1), (1, 2)]

    def test_two_lists_same_subtree(self):
        lists = [[(1, 2, 1)], [(1, 2, 3)]]
        assert slca(lists) == [(1, 2)]

    def test_two_lists_only_root_connects(self):
        lists = [[(1, 1, 1)], [(1, 2, 1)]]
        assert slca(lists) == [(1,)]

    def test_multiple_slcas(self):
        lists = [
            [(1, 1, 1), (1, 2, 1)],
            [(1, 1, 2), (1, 2, 2)],
        ]
        assert slca(lists) == [(1, 1), (1, 2)]

    def test_deeper_wins_over_shallower(self):
        # Both keywords under 1.1.1 and also spread across 1.1/1.2 —
        # the deep match 1.1.1 must suppress the shallow ancestor 1.1.
        lists = [
            [(1, 1, 1, 1), (1, 2, 1)],
            [(1, 1, 1, 2)],
        ]
        assert slca(lists) == [(1, 1, 1)]

    def test_empty_list_gives_nothing(self):
        assert slca([[(1, 1)], []]) == []
        assert slca([]) == []

    def test_paper_tree_like_case(self):
        # trie: 1.2.1.1, 1.3.2.1, 1.4.1.1; icde: 1.2.3.1, 1.3.3.1, 1.4.2.1
        trie = [(1, 2, 1, 1), (1, 3, 2, 1), (1, 4, 1, 1)]
        icde = [(1, 2, 3, 1), (1, 3, 3, 1), (1, 4, 2, 1)]
        assert slca([trie, icde]) == [(1, 2), (1, 3), (1, 4)]

    def test_occurrence_at_internal_node(self):
        # One keyword at a node, the other in its subtree.
        lists = [[(1, 2)], [(1, 2, 3)]]
        assert slca(lists) == [(1, 2)]


class TestSLCAProperty:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(dewey_lists, min_size=1, max_size=3))
    def test_matches_brute_force(self, lists):
        assert slca(lists) == slca_brute_force(lists)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(dewey_lists, min_size=1, max_size=3))
    def test_results_are_antichain(self, lists):
        result = slca(lists)
        for i, a in enumerate(result):
            for b in result[i + 1 :]:
                assert a[: len(b)] != b and b[: len(a)] != a

    @settings(max_examples=60, deadline=None)
    @given(st.lists(dewey_lists, min_size=2, max_size=3))
    def test_every_slca_contains_all_lists(self, lists):
        for root in slca(lists):
            for lst in lists:
                assert any(
                    code[: len(root)] == root for code in lst
                ), f"{root} misses a keyword"
