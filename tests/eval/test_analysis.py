"""Tests for the statistical analysis helpers."""

import pytest

from repro.core.suggestion import Suggestion
from repro.datasets.queries import QueryRecord
from repro.eval.analysis import (
    FailureBreakdown,
    bootstrap_mrr_ci,
    categorize_failures,
    mrr_difference_ci,
    paired_comparison,
    sign_test_p_value,
)
from repro.eval.runner import EvalResult, QueryOutcome


def make_result(rrs, with_suggestions=True):
    outcomes = []
    for i, rr in enumerate(rrs):
        record = QueryRecord(
            dirty=(f"q{i}",), golden=((f"g{i}",),), kind="RAND"
        )
        suggestions = (
            [Suggestion(tokens=(f"g{i}",), score=1.0)]
            if with_suggestions
            else []
        )
        outcomes.append(
            QueryOutcome(
                record=record,
                suggestions=suggestions,
                elapsed=0.001,
                rr=rr,
            )
        )
    mrr = sum(rrs) / len(rrs) if rrs else 0.0
    return EvalResult(
        system="X",
        workload="W",
        mrr=mrr,
        precision={1: 0.0},
        mean_time=0.001,
        total_time=0.001 * len(rrs),
        outcomes=outcomes,
    )


class TestBootstrapCI:
    def test_interval_contains_point(self):
        result = make_result([1.0, 0.5, 0.0, 1.0, 1.0, 0.5])
        ci = bootstrap_mrr_ci(result, iterations=500, seed=1)
        assert ci.low <= ci.point <= ci.high

    def test_deterministic(self):
        result = make_result([1.0, 0.0, 0.5])
        a = bootstrap_mrr_ci(result, seed=7)
        b = bootstrap_mrr_ci(result, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_degenerate_distribution(self):
        result = make_result([1.0] * 10)
        ci = bootstrap_mrr_ci(result)
        assert ci.low == ci.high == 1.0

    def test_empty_result(self):
        ci = bootstrap_mrr_ci(make_result([]))
        assert ci.point == 0.0

    def test_wider_at_higher_confidence(self):
        result = make_result([1.0, 0.0, 0.5, 1.0, 0.0, 1.0, 0.25])
        narrow = bootstrap_mrr_ci(result, confidence=0.5, seed=3)
        wide = bootstrap_mrr_ci(result, confidence=0.99, seed=3)
        assert (wide.high - wide.low) >= (narrow.high - narrow.low)

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mrr_ci(make_result([1.0]), confidence=1.0)


class TestSignTest:
    def test_no_decided_queries(self):
        assert sign_test_p_value(0, 0) == 1.0

    def test_balanced_is_not_significant(self):
        assert sign_test_p_value(5, 5) > 0.5

    def test_landslide_is_significant(self):
        assert sign_test_p_value(20, 0) < 0.001

    def test_symmetry(self):
        assert sign_test_p_value(8, 2) == sign_test_p_value(2, 8)

    def test_bounded_by_one(self):
        for w, l in ((1, 1), (3, 4), (0, 1)):
            assert 0.0 < sign_test_p_value(w, l) <= 1.0


class TestPairedComparison:
    def test_counts(self):
        a = make_result([1.0, 0.5, 0.0, 1.0])
        b = make_result([0.5, 0.5, 1.0, 0.0])
        comparison = paired_comparison(a, b)
        assert comparison.wins == 2
        assert comparison.ties == 1
        assert comparison.losses == 1

    def test_misaligned_workloads_rejected(self):
        a = make_result([1.0, 0.5])
        b = make_result([1.0])
        with pytest.raises(ValueError):
            paired_comparison(a, b)

    def test_dominant_system_significant(self):
        a = make_result([1.0] * 15)
        b = make_result([0.0] * 15)
        comparison = paired_comparison(a, b)
        assert comparison.wins == 15
        assert comparison.p_value < 0.001


class TestFailureBreakdown:
    def test_partition_sums_to_total(self):
        result = make_result([1.0, 0.5, 0.0, 1.0, 0.25])
        breakdown = categorize_failures(result)
        assert (
            breakdown.correct_at_1
            + breakdown.ranked_low
            + breakdown.absent
            + breakdown.silent
            == breakdown.total
        )

    def test_categories(self):
        result = make_result([1.0, 0.5, 0.0])
        breakdown = categorize_failures(result)
        assert breakdown.correct_at_1 == 1
        assert breakdown.ranked_low == 1
        assert breakdown.absent == 1
        assert breakdown.silent == 0

    def test_silent_miss(self):
        result = make_result([0.0], with_suggestions=False)
        assert categorize_failures(result).silent == 1

    def test_silent_on_clean_counts_correct(self):
        result = make_result([1.0], with_suggestions=False)
        assert categorize_failures(result).correct_at_1 == 1

    def test_as_rows(self):
        rows = FailureBreakdown(4, 1, 1, 1, 1).as_rows()
        assert len(rows) == 4
        assert rows[0] == ("correct at rank 1", 1)


class TestDifferenceCI:
    def test_positive_difference(self):
        a = make_result([1.0, 1.0, 0.5, 1.0])
        b = make_result([0.0, 0.5, 0.5, 0.0])
        ci = mrr_difference_ci(a, b, iterations=500, seed=2)
        assert ci.point > 0
        assert ci.low <= ci.point <= ci.high

    def test_identical_systems(self):
        a = make_result([1.0, 0.5])
        b = make_result([1.0, 0.5])
        ci = mrr_difference_ci(a, b)
        assert ci.point == 0.0
        assert ci.low == ci.high == 0.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            mrr_difference_ci(make_result([1.0]), make_result([]))
