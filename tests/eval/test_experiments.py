"""Tests for the standard experimental setting (repro.eval.experiments)."""

import pytest

from repro.eval.experiments import (
    EVAL_MAX_ERRORS,
    RULE_MAX_ERRORS,
    all_settings,
    dblp_setting,
    eps_for,
    workload_label,
)


@pytest.fixture(scope="module")
def dblp():
    return dblp_setting("small")


class TestEpsPolicy:
    def test_rule_uses_larger_radius(self):
        assert eps_for("RULE") == RULE_MAX_ERRORS
        assert eps_for("RAND") == EVAL_MAX_ERRORS
        assert eps_for("CLEAN") == EVAL_MAX_ERRORS
        assert RULE_MAX_ERRORS > EVAL_MAX_ERRORS


class TestSettings:
    def test_both_datasets(self):
        labels = [s.label for s in all_settings("small")]
        assert labels == ["DBLP", "INEX"]

    def test_cached_per_scale(self):
        assert dblp_setting("small") is dblp_setting("small")

    def test_workload_label(self, dblp):
        assert workload_label(dblp, "RAND") == "DBLP-RAND"

    def test_workloads_complete(self, dblp):
        assert set(dblp.workloads) == {"CLEAN", "RAND", "RULE"}

    def test_dblp_queries_author_anchored(self, dblp):
        author_tokens = set()
        for entity in dblp.document.root.children:
            for child in entity.children:
                if child.label == "author":
                    author_tokens.update(child.text.split())
        for record in dblp.workloads["CLEAN"]:
            assert record.dirty[0] in author_tokens


class TestFactories:
    def test_suggesters_share_index_not_cache(self, dblp):
        a = dblp.xclean()
        b = dblp.xclean()
        assert a.generator is not b.generator
        assert a.generator._index is b.generator._index

    def test_generator_radius_covers_rule(self, dblp):
        suggester = dblp.xclean(max_errors=RULE_MAX_ERRORS)
        # Must not raise: the shared index was built for eps=3.
        suggester.suggest(dblp.workloads["RULE"][0].dirty_text, 3)

    def test_se1_knows_more_than_se2(self, dblp):
        assert len(dblp.se1().misspelling_map) >= len(
            dblp.se2().misspelling_map
        )

    def test_query_log_contains_rule_corrections(self, dblp):
        log = dblp.query_log_map(coverage=1.0)
        covered = 0
        for record in dblp.workloads["RULE"]:
            for dirty_word, clean_word in zip(
                record.dirty, record.golden[0]
            ):
                if dirty_word != clean_word and log.get(
                    dirty_word
                ) == clean_word:
                    covered += 1
        assert covered > 0

    def test_coverage_fraction_respected(self, dblp):
        full = dblp.query_log_map(coverage=1.0)
        partial = dblp.query_log_map(coverage=0.5)
        assert len(partial) <= len(full)

    def test_naive_and_slca_factories(self, dblp):
        record = dblp.workloads["RAND"][0]
        assert isinstance(
            dblp.naive().suggest(record.dirty_text, 2), list
        )
        assert isinstance(
            dblp.xclean_slca().suggest(record.dirty_text, 2), list
        )
