"""Tests for the experiment runner and report rendering."""

import pytest

from repro.core.suggestion import Suggestion
from repro.datasets.queries import QueryRecord
from repro.eval.reporting import (
    format_curve,
    format_table,
    shape_check,
)
from repro.eval.runner import evaluate_suggester
from repro.exceptions import QueryError


class EchoSuggester:
    """Suggests the query itself (perfect on CLEAN, useless on dirty)."""

    def suggest(self, query, k=10):
        return [Suggestion(tokens=tuple(query.split()), score=1.0)]


class FailingSuggester:
    def suggest(self, query, k=10):
        raise QueryError("nope")


def records():
    return [
        QueryRecord(dirty=("tree",), golden=(("tree",),), kind="CLEAN"),
        QueryRecord(dirty=("tre",), golden=(("tree",),), kind="RAND"),
    ]


class TestRunner:
    def test_metrics_aggregated(self):
        result = evaluate_suggester(EchoSuggester(), records())
        # Echo gets the clean query right, misses the dirty one.
        assert result.mrr == pytest.approx(0.5)
        assert result.precision[1] == pytest.approx(0.5)
        assert len(result.outcomes) == 2

    def test_times_recorded(self):
        result = evaluate_suggester(EchoSuggester(), records())
        assert result.mean_time >= 0
        assert result.total_time >= result.mean_time

    def test_query_error_counts_as_empty(self):
        result = evaluate_suggester(FailingSuggester(), records())
        # Empty answer is right for the clean query only.
        assert result.mrr == pytest.approx(0.5)

    def test_hit_rank(self):
        result = evaluate_suggester(EchoSuggester(), records())
        assert result.outcomes[0].hit_rank == 1
        assert result.outcomes[1].hit_rank is None

    def test_empty_workload(self):
        result = evaluate_suggester(EchoSuggester(), [])
        assert result.mrr == 0.0
        assert result.mean_time == 0.0

    def test_system_name_default(self):
        result = evaluate_suggester(EchoSuggester(), records())
        assert result.system == "EchoSuggester"

    def test_precision_row_ordering(self):
        result = evaluate_suggester(
            EchoSuggester(), records(), precision_levels=(5, 1, 3)
        )
        assert result.precision_row() == [
            result.precision[1],
            result.precision[3],
            result.precision[5],
        ]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ("name", "value"),
            [("alpha", 1.23456), ("b", 7)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text
        assert "1.235" in text  # float formatting

    def test_format_table_handles_wide_cells(self):
        text = format_table(("a",), [("very-long-cell-content",)])
        assert "very-long-cell-content" in text

    def test_format_curve_contains_values(self):
        text = format_curve(
            [1, 5], {"XClean": [0.9, 0.95], "PY08": [0.2, 0.5]}
        )
        assert "XClean" in text and "PY08" in text
        assert "0.950" in text

    def test_shape_check_markers(self):
        assert "[OK ]" in shape_check("holds", True)
        assert "[MISS]" in shape_check("broken", False)


class TestPercentiles:
    def test_basic_percentiles(self):
        result = evaluate_suggester(EchoSuggester(), records())
        p50 = result.time_percentile(50)
        p100 = result.time_percentile(100)
        assert 0 <= p50 <= p100

    def test_zero_percentile_is_min(self):
        result = evaluate_suggester(EchoSuggester(), records())
        assert result.time_percentile(0) == min(
            o.elapsed for o in result.outcomes
        )

    def test_hundred_percentile_is_max(self):
        result = evaluate_suggester(EchoSuggester(), records())
        assert result.time_percentile(100) == max(
            o.elapsed for o in result.outcomes
        )

    def test_empty_result(self):
        result = evaluate_suggester(EchoSuggester(), [])
        assert result.time_percentile(95) == 0.0

    def test_out_of_range_rejected(self):
        result = evaluate_suggester(EchoSuggester(), records())
        with pytest.raises(ValueError):
            result.time_percentile(101)
