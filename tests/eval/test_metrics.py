"""Tests for MRR / precision@N metrics."""

import pytest

from repro.core.suggestion import Suggestion
from repro.datasets.queries import QueryRecord
from repro.eval.metrics import (
    hit_at,
    mean_reciprocal_rank,
    precision_at,
    reciprocal_rank,
)


def record(dirty, golden, kind="RAND"):
    return QueryRecord(dirty=dirty, golden=golden, kind=kind)


def suggestions(*token_tuples):
    return [Suggestion(tokens=t, score=1.0) for t in token_tuples]


class TestReciprocalRank:
    def test_rank_one(self):
        r = record(("tre",), (("tree",),))
        assert reciprocal_rank(suggestions(("tree",)), r) == 1.0

    def test_rank_three(self):
        r = record(("tre",), (("tree",),))
        s = suggestions(("trie",), ("trees",), ("tree",))
        assert reciprocal_rank(s, r) == pytest.approx(1 / 3)

    def test_miss(self):
        r = record(("tre",), (("tree",),))
        assert reciprocal_rank(suggestions(("trie",)), r) == 0.0

    def test_empty_suggestions_on_clean_query(self):
        r = record(("tree",), (("tree",),), kind="CLEAN")
        assert reciprocal_rank([], r) == 1.0

    def test_empty_suggestions_on_dirty_query(self):
        r = record(("tre",), (("tree",),))
        assert reciprocal_rank([], r) == 0.0

    def test_multiple_golden_answers(self):
        r = record(("tre",), (("tree",), ("trees",)))
        s = suggestions(("trees",), ("tree",))
        assert reciprocal_rank(s, r) == 1.0


class TestMRR:
    def test_mean(self):
        assert mean_reciprocal_rank([1.0, 0.5, 0.0]) == pytest.approx(0.5)

    def test_empty(self):
        assert mean_reciprocal_rank([]) == 0.0


class TestHitAndPrecision:
    def test_hit_within_cutoff(self):
        r = record(("tre",), (("tree",),))
        s = suggestions(("trie",), ("tree",))
        assert not hit_at(s, r, 1)
        assert hit_at(s, r, 2)

    def test_empty_suggestion_convention(self):
        clean = record(("tree",), (("tree",),), kind="CLEAN")
        assert hit_at([], clean, 1)

    def test_precision_at(self):
        records = [
            record(("a",), (("b",),)),
            record(("c",), (("d",),)),
        ]
        all_suggestions = [
            suggestions(("b",)),  # hit at 1
            suggestions(("x",), ("d",)),  # hit at 2
        ]
        assert precision_at(all_suggestions, records, 1) == 0.5
        assert precision_at(all_suggestions, records, 2) == 1.0

    def test_precision_empty_records(self):
        assert precision_at([], [], 5) == 0.0

    def test_precision_monotone_in_n(self):
        records = [record(("q",), (("g",),)) for _ in range(4)]
        all_suggestions = [
            suggestions(("g",)),
            suggestions(("x",), ("g",)),
            suggestions(("x",), ("y",), ("g",)),
            suggestions(("x",)),
        ]
        values = [
            precision_at(all_suggestions, records, n) for n in (1, 2, 3)
        ]
        assert values == sorted(values)
