"""The ops plane over real sockets: /readyz, /statusz, correlation ids.

Same harness as ``test_front_end``: each test runs its own event loop
with the front-end on an ephemeral port and drives it from worker
threads.  Health-state transitions are induced by poking the exact
internal flags the degrade ladder sets (breaker state, quarantine,
pool-suspect) rather than staging real worker crashes — those paths
have their own tests under ``tests/reliability``.
"""

import asyncio
import contextlib
import http.client
import json
import os
import socket

import pytest

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.core.shards import ShardedSuggestionService
from repro.index.corpus import build_corpus_index
from repro.index.delta import node_to_json
from repro.index.sharding import (
    MANIFEST_NAME,
    build_sharded_snapshot,
    load_manifest,
)
from repro.index.snapshot import build_snapshot, load_snapshot
from repro.index.wal import WalRecord
from repro.net.server import HTTPFrontEnd, ServeConfig
from repro.obs import MetricsRegistry
from repro.obs.logging import RequestLog, read_jsonl
from repro.obs.trace import Tracer
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument
from repro.xmltree.node import XMLNode


@pytest.fixture()
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


def make_service(corpus, **kwargs):
    kwargs.setdefault("config", XCleanConfig(max_errors=1))
    return SuggestionService(corpus, **kwargs)


@contextlib.asynccontextmanager
async def front_end(service, *, request_log=None, slo=None, **config):
    config.setdefault("port", 0)
    config.setdefault("drain_grace", 5.0)
    fe = HTTPFrontEnd(
        service, ServeConfig(**config),
        request_log=request_log, slo=slo,
    )
    await fe.start()
    runner = asyncio.ensure_future(fe.run())
    try:
        yield fe
    finally:
        fe.initiate_drain()
        await runner


def get(port: int, target: str, headers: dict | None = None):
    """One GET on a fresh connection; returns (status, headers, body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", target, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def post(port: int, target: str, payload: bytes = b"{}"):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            "POST", target, body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def raw_roundtrip(port: int, payload: bytes) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
        s.sendall(payload)
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def readyz(port: int):
    status, _, body = get(port, "/readyz")
    return status, json.loads(body)


def statusz(port: int):
    status, _, body = get(port, "/statusz")
    assert status == 200
    return json.loads(body)


def open_breaker(breaker):
    for _ in range(16):
        breaker.record_failure()
    assert breaker.state == "open"


# ----------------------------------------------------------------------
# Live-update fixtures (snapshot-backed single + sharded services)
# ----------------------------------------------------------------------


def el(label, *children, text=""):
    node = XMLNode(label, text=text)
    for child in children:
        node.add_child(child)
    return node


def book(title, author):
    return el(
        "book", el("title", text=title), el("author", text=author)
    )


def base_document():
    root = el(
        "bib",
        book("database systems", "codd"),
        book("xml keyword search", "lu"),
        book("valid spelling suggestion", "chen"),
    )
    return XMLDocument(root, name="ops-test")


NEW_BOOK = WalRecord(
    op="add", dewey=(1,),
    subtree=node_to_json(book("zanzibar consistency", "pat")),
)


@pytest.fixture
def live_service(tmp_path):
    document = base_document()
    path = str(tmp_path / "ops.xcs3")
    build_snapshot(build_corpus_index(document), path)
    with SuggestionService(
        load_snapshot(path), config=XCleanConfig(max_errors=2)
    ) as service:
        service.enable_live_updates(document)
        yield service


# ----------------------------------------------------------------------
# /readyz — single service
# ----------------------------------------------------------------------


class TestReadyzSingle:
    def test_healthy_service_is_ready(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(readyz, fe.port)

        status, body = asyncio.run(main())
        assert status == 200
        assert body == {"status": "ready", "reasons": []}

    def test_breaker_open_degrades(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    open_breaker(service.breaker)
                    return await asyncio.to_thread(readyz, fe.port)

        status, body = asyncio.run(main())
        assert status == 200  # degraded still serves traffic
        assert body["status"] == "degraded"
        assert "breaker_open" in body["reasons"]

    def test_quarantine_degrades_and_clears(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    service._snapshot_degraded = True
                    during = await asyncio.to_thread(readyz, fe.port)
                    service._snapshot_degraded = False
                    after = await asyncio.to_thread(readyz, fe.port)
                    return during, after

        during, after = asyncio.run(main())
        assert during[1]["status"] == "degraded"
        assert "snapshot_quarantined" in during[1]["reasons"]
        assert after == (200, {"status": "ready", "reasons": []})

    def test_pool_gone_in_process_fallback_degrades(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    service._pool_suspect = True
                    verdict = await asyncio.to_thread(readyz, fe.port)
                    # Degraded must keep answering /suggest correctly.
                    answer = await asyncio.to_thread(
                        get, fe.port, "/suggest?q=tree+icdt&k=3"
                    )
                    return verdict, answer[0]

        (status, body), suggest_status = asyncio.run(main())
        assert status == 200
        assert body["status"] == "degraded"
        assert "worker_pool_suspect" in body["reasons"]
        assert suggest_status == 200

    def test_closed_service_is_not_ready(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    service._closed = True
                    try:
                        return await asyncio.to_thread(readyz, fe.port)
                    finally:
                        service._closed = False

        status, body = asyncio.run(main())
        assert status == 503
        assert body["status"] == "not_ready"
        assert "service_closed" in body["reasons"]

    def test_readyz_is_get_only(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        post, fe.port, "/readyz"
                    )

        status, _, _ = asyncio.run(main())
        assert status == 405


# ----------------------------------------------------------------------
# /readyz — sharded service
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_manifest(tmp_path_factory):
    directory = tmp_path_factory.mktemp("ops-shards")
    corpus = build_corpus_index(XMLDocument(paper_example_tree()))
    build_sharded_snapshot(corpus, str(directory), 2)
    return load_manifest(os.path.join(str(directory), MANIFEST_NAME))


class TestReadyzSharded:
    def test_in_process_scatter_is_ready(self, sharded_manifest):
        async def main():
            with ShardedSuggestionService(
                sharded_manifest, config=XCleanConfig(max_errors=1)
            ) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(readyz, fe.port)

        status, body = asyncio.run(main())
        assert (status, body["status"]) == (200, "ready")

    def test_mid_swap_drain_gate_does_not_flap(self, sharded_manifest):
        # The swap gate queues arrivals instead of shedding them, so a
        # swap in progress must read as plain ready — flapping here
        # would eject the instance from rotation on every live update.
        async def main():
            with ShardedSuggestionService(
                sharded_manifest, config=XCleanConfig(max_errors=1)
            ) as service:
                async with front_end(service) as fe:
                    service._swapping = True
                    try:
                        verdict = await asyncio.to_thread(
                            readyz, fe.port
                        )
                        payload = await asyncio.to_thread(
                            statusz, fe.port
                        )
                    finally:
                        service._swapping = False
                    return verdict, payload

        (status, body), payload = asyncio.run(main())
        assert (status, body) == (
            200, {"status": "ready", "reasons": []}
        )
        # /statusz still reports the swap for operators to see.
        assert payload["service"]["swapping"] is True

    def test_replica_breaker_open_degrades_with_shard_reason(
        self, sharded_manifest
    ):
        async def main():
            with ShardedSuggestionService(
                sharded_manifest,
                config=XCleanConfig(max_errors=1),
                replicas=1,
            ) as service:
                async with front_end(service) as fe:
                    open_breaker(service._pools[0][0].breaker)
                    return await asyncio.to_thread(readyz, fe.port)

        status, body = asyncio.run(main())
        assert status == 200
        assert body["status"] == "degraded"
        assert "breaker_open shard=0 replica=0" in body["reasons"]
        # The only replica of shard 0 is open: the whole shard fell
        # back to in-process execution, and the verdict names it.
        assert "in_process_fallback shard=0" in body["reasons"]


# ----------------------------------------------------------------------
# /statusz — across apply_updates -> compact -> swap
# ----------------------------------------------------------------------


class TestStatuszSingle:
    def test_raw_socket_statusz(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        raw_roundtrip, fe.port,
                        b"GET /statusz HTTP/1.1\r\n"
                        b"Host: x\r\nConnection: close\r\n\r\n",
                    )

        raw = asyncio.run(main())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        payload = json.loads(body)
        assert payload["health"]["state"] == "ready"
        assert payload["service"]["mode"] == "single"
        assert payload["process"]["pid"] > 0
        assert payload["front_end"]["draining"] is False
        assert payload["slo"]["windows"]
        assert payload["ts"] > 0

    def test_statusz_tracks_update_compact_swap(self, live_service):
        async def main():
            async with front_end(live_service) as fe:
                port = fe.port
                initial = await asyncio.to_thread(statusz, port)

                live_service.apply_updates([NEW_BOOK])
                applied = await asyncio.to_thread(statusz, port)
                applied_ready = await asyncio.to_thread(readyz, port)

                live_service.compact()
                compacted = await asyncio.to_thread(statusz, port)
                compacted_ready = await asyncio.to_thread(readyz, port)

                live_service.swap_snapshot()
                swapped = await asyncio.to_thread(statusz, port)
                return (initial, applied, applied_ready,
                        compacted, compacted_ready, swapped)

        (initial, applied, applied_ready,
         compacted, compacted_ready, swapped) = asyncio.run(main())

        service = initial["service"]
        assert service["data_generation"] == 0
        assert service["live"]["wal_records"] == 0
        assert service["live"]["delta"]["records"] == 0

        # After apply: WAL depth and delta size visible; serving is
        # pinned to the in-process overlay -> degraded, not unready.
        service = applied["service"]
        assert service["live"]["wal_records"] == 1
        assert service["live"]["wal_bytes"] > 0
        assert service["live"]["delta"]["approx_bytes"] > 0
        assert service["live_pinned"] is True
        assert service["data_generation"] == 0
        assert applied_ready[0] == 200
        assert applied_ready[1]["status"] == "degraded"
        assert "live_overlay_pinned" in applied_ready[1]["reasons"]

        # After compact: fresh generation, WAL folded + truncated,
        # compaction outcome recorded, health back to ready.
        service = compacted["service"]
        assert service["data_generation"] == 1
        assert service["live"]["wal_records"] == 0
        assert service["live"]["generation"] == 1
        last = service["live"]["last_compaction"]
        assert last["outcome"] == "ok"
        assert last["generation"] == 1
        assert last["records_folded"] == 1
        assert last["duration_s"] > 0
        assert service["live_pinned"] is False
        assert compacted_ready[1] == {"status": "ready", "reasons": []}

        # Every install bumps the swap epoch monotonically.
        epochs = [
            payload["service"]["swap_epoch"]
            for payload in (initial, applied, compacted, swapped)
        ]
        assert epochs == sorted(epochs)
        assert epochs[-1] > epochs[0]

    def test_statusz_is_get_only(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        post, fe.port, "/statusz"
                    )

        status, _, _ = asyncio.run(main())
        assert status == 405


class TestStatuszSharded:
    def test_statusz_tracks_sharded_update_compact(self, tmp_path):
        document = base_document()
        directory = str(tmp_path / "shards")
        build_sharded_snapshot(
            build_corpus_index(document), directory, shards=2
        )
        manifest = load_manifest(
            os.path.join(directory, MANIFEST_NAME)
        )

        async def main(service):
            async with front_end(service) as fe:
                port = fe.port
                initial = await asyncio.to_thread(statusz, port)
                service.apply_updates([NEW_BOOK])
                applied = await asyncio.to_thread(statusz, port)
                service.compact()
                compacted = await asyncio.to_thread(statusz, port)
                return initial, applied, compacted

        with ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=2)
        ) as service:
            service.enable_live_updates(document)
            initial, applied, compacted = asyncio.run(main(service))

        assert initial["service"]["mode"] == "sharded"
        assert initial["service"]["shard_count"] == 2
        assert len(initial["service"]["shards"]) == 2
        for shard in initial["service"]["shards"]:
            assert shard["path"]
            assert shard["replicas"] == []  # in-process scatter

        # Sharded apply folds + swaps inline (no overlay phase): the
        # WAL is already folded away by the time apply returns.
        assert applied["service"]["live"]["wal_records"] == 0
        assert (
            applied["service"]["data_generation"]
            > initial["service"]["data_generation"]
        )
        last = applied["service"]["live"]["last_compaction"]
        assert last["outcome"] == "ok"
        assert last["records_folded"] == 1

        # An explicit compact() still rolls the generation forward.
        assert compacted["service"]["live"]["wal_records"] == 0
        assert (
            compacted["service"]["data_generation"]
            > applied["service"]["data_generation"]
        )
        assert (
            compacted["service"]["swap_epoch"]
            > initial["service"]["swap_epoch"]
        )


# ----------------------------------------------------------------------
# Correlation ids: one id joins log line, span tree, flight entry
# ----------------------------------------------------------------------


class TestCorrelationId:
    def test_one_id_joins_log_spans_and_flight_entry(
        self, corpus, tmp_path
    ):
        log_path = str(tmp_path / "access.jsonl")
        supplied = "corr-id-0123456789abcdef"

        async def main(service, log):
            async with front_end(service, request_log=log) as fe:
                return await asyncio.to_thread(
                    get, fe.port, "/suggest?q=tree+icdt&k=3",
                    {"X-Request-Id": supplied},
                )

        with make_service(corpus, tracer=Tracer()) as service:
            log = RequestLog(log_path)
            status, headers, _ = asyncio.run(main(service, log))
            assert status == 200
            # 1. Echoed back to the caller.
            assert headers["X-Request-Id"] == supplied
            # 2. On the span tree as the trace id.
            root = service.tracer.last_trace
            assert root.attributes["trace_id"] == supplied
            # 3. In the flight recorder, findable by that same id.
            entry = service.flight_recorder.find(supplied)
            assert entry is not None
            assert entry.trace_id == supplied
        # 4. On the access-log line.
        (line,) = read_jsonl(log_path)
        assert line["id"] == supplied
        assert line["path"] == "/suggest"
        assert line["status"] == 200
        assert line["outcome"] == "served"
        assert line["query"] == "tree icdt"
        assert line["k"] == 3
        assert line["coalesced"] is False
        assert line["latency_s"] >= 0
        assert line["ts"] > 0

    def test_invalid_inbound_id_is_replaced(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.gather(
                        asyncio.to_thread(
                            get, fe.port, "/suggest?q=tree",
                            {"X-Request-Id": "bad id with spaces"},
                        ),
                        asyncio.to_thread(
                            get, fe.port, "/suggest?q=tree",
                            {"X-Request-Id": "x" * 65},
                        ),
                    )

        for _, headers, _ in asyncio.run(main()):
            minted = headers["X-Request-Id"]
            assert len(minted) == 16
            int(minted, 16)  # fresh hex id, not the hostile input

    def test_id_minted_when_absent_and_errors_logged(
        self, corpus, tmp_path
    ):
        log_path = str(tmp_path / "access.jsonl")

        async def main(service, log):
            async with front_end(service, request_log=log) as fe:
                ok = await asyncio.to_thread(
                    get, fe.port, "/suggest?q=tree"
                )
                missing = await asyncio.to_thread(
                    get, fe.port, "/nope"
                )
                return ok, missing

        with make_service(corpus) as service:
            log = RequestLog(log_path)
            ok, missing = asyncio.run(main(service, log))
        assert ok[0] == 200 and missing[0] == 404
        ok_line, missing_line = read_jsonl(log_path)
        # Minted id is echoed and logged identically.
        assert ok_line["id"] == ok[1]["X-Request-Id"]
        assert len(ok_line["id"]) == 16
        # Error responses carry their own fresh id and outcome.
        assert missing_line["id"] == missing[1]["X-Request-Id"]
        assert missing_line["status"] == 404
        assert missing_line["outcome"] == "client_error"


# ----------------------------------------------------------------------
# SLO + gauges on the wire
# ----------------------------------------------------------------------


class TestSLOWiring:
    def test_suggest_outcomes_feed_the_slo_rings(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    await asyncio.gather(
                        asyncio.to_thread(
                            get, fe.port, "/suggest?q=tree+icdt"
                        ),
                        asyncio.to_thread(
                            get, fe.port, "/suggest?q=icdt"
                        ),
                    )
                    # Non-suggest and client-error traffic must not
                    # burn the availability budget.
                    await asyncio.to_thread(get, fe.port, "/nope")
                    await asyncio.to_thread(get, fe.port, "/suggest")
                    return fe.slo.window_report(60)

        view = asyncio.run(main())
        assert view["total"] == 2
        assert view["served"] == 2
        assert view["availability"] == 1.0
        assert view["availability_burn_rate"] == 0.0

    def test_metrics_exports_slo_and_process_gauges(self, corpus):
        async def main():
            with make_service(
                corpus, metrics=MetricsRegistry()
            ) as service:
                async with front_end(service) as fe:
                    await asyncio.to_thread(
                        get, fe.port, "/suggest?q=tree+icdt"
                    )
                    return await asyncio.to_thread(
                        get, fe.port, "/metrics"
                    )

        _, _, body = asyncio.run(main())
        text = body.decode("utf-8")
        assert 'xclean_slo_availability{window="1m"} 1' in text
        assert "# TYPE xclean_slo_availability gauge" in text
        assert "xclean_proc_rss_bytes" in text
        assert "xclean_proc_uptime_seconds" in text
        assert 'xclean_proc_gc_collections{gen="0"}' in text
