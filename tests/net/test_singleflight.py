"""Single-flight coalescing semantics on one event loop."""

import asyncio

import pytest

from repro.net.singleflight import SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_identical_keys_compute_once(self):
        async def main():
            flight = SingleFlight()
            calls = 0
            release = asyncio.Event()

            async def compute():
                nonlocal calls
                calls += 1
                await release.wait()
                return object()

            async def one():
                return await flight.run("key", compute)

            tasks = [asyncio.ensure_future(one()) for _ in range(8)]
            await asyncio.sleep(0)  # let every waiter reach the flight
            release.set()
            results = await asyncio.gather(*tasks)
            return calls, results, flight

        calls, results, flight = run(main())
        assert calls == 1
        values = [value for value, _ in results]
        # Followers receive the *same object*, not a copy.
        assert all(value is values[0] for value in values)
        coalesced_flags = sorted(flag for _, flag in results)
        assert coalesced_flags == [False] + [True] * 7
        assert flight.leaders == 1
        assert flight.coalesced == 7
        assert len(flight) == 0

    def test_distinct_keys_do_not_coalesce(self):
        async def main():
            flight = SingleFlight()
            calls = []

            async def compute(key):
                calls.append(key)
                await asyncio.sleep(0)
                return key

            results = await asyncio.gather(
                flight.run("a", lambda: compute("a")),
                flight.run("b", lambda: compute("b")),
            )
            return calls, results

        calls, results = run(main())
        assert sorted(calls) == ["a", "b"]
        assert [flag for _, flag in results] == [False, False]

    def test_sequential_calls_are_fresh_flights(self):
        async def main():
            flight = SingleFlight()
            calls = 0

            async def compute():
                nonlocal calls
                calls += 1
                return calls

            first, _ = await flight.run("key", compute)
            second, coalesced = await flight.run("key", compute)
            return first, second, coalesced, flight

        first, second, coalesced, flight = run(main())
        # Coalescing is concurrency-only: a later request computes anew.
        assert (first, second) == (1, 2)
        assert not coalesced
        assert flight.leaders == 2
        assert flight.coalesced == 0


class TestFailures:
    def test_leader_failure_propagates_to_followers(self):
        async def main():
            flight = SingleFlight()
            release = asyncio.Event()

            async def compute():
                await release.wait()
                raise ValueError("boom")

            async def one():
                return await flight.run("key", compute)

            tasks = [asyncio.ensure_future(one()) for _ in range(3)]
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(
                *tasks, return_exceptions=True
            )
            return results, flight

        results, flight = run(main())
        assert len(results) == 3
        assert all(isinstance(r, ValueError) for r in results)
        assert len(flight) == 0

    def test_failure_does_not_poison_later_flights(self):
        async def main():
            flight = SingleFlight()

            async def bad():
                raise ValueError("boom")

            async def good():
                return "ok"

            with pytest.raises(ValueError):
                await flight.run("key", bad)
            value, coalesced = await flight.run("key", good)
            return value, coalesced

        value, coalesced = run(main())
        assert value == "ok"
        assert not coalesced
