"""Pure HTTP wire handling: parsing, limits, keep-alive, formatting."""

import json

import pytest

from repro.net.http import (
    BadRequest,
    HTTPRequest,
    build_response,
    error_body,
    json_body,
    parse_request_head,
    parse_target,
    retry_after_header,
)


def head(text: str) -> bytes:
    return text.replace("\n", "\r\n").encode("ascii")


class TestRequestLine:
    def test_simple_get(self):
        request = parse_request_head(
            head("GET /suggest?q=tree+icdt&k=3 HTTP/1.1\nHost: x\n\n")
        )
        assert request.method == "GET"
        assert request.path == "/suggest"
        assert request.params == {"q": "tree icdt", "k": "3"}
        assert request.headers["host"] == "x"

    def test_percent_decoding(self):
        request = parse_request_head(
            head("GET /suggest?q=tree%20icdt HTTP/1.1\n\n")
        )
        assert request.params["q"] == "tree icdt"

    @pytest.mark.parametrize("line", [
        "GET /x",                      # missing version
        "GET  /x HTTP/1.1",            # empty part
        "get /x HTTP/1.1",             # lower-case method
        "BREW /x HTTP/1.1",            # unknown method
        "GET /x HTTP/2.0",             # unsupported version
        "",                            # empty request line
    ])
    def test_malformed_request_lines(self, line):
        with pytest.raises(BadRequest) as excinfo:
            parse_request_head(head(f"{line}\nHost: x\n\n"))
        assert excinfo.value.status == 400

    def test_non_ascii_head(self):
        with pytest.raises(BadRequest):
            parse_request_head("GET /ä HTTP/1.1\r\n\r\n".encode("utf-8"))

    def test_non_origin_form_target(self):
        with pytest.raises(BadRequest):
            parse_target("http://evil.example/proxy")


class TestHeaders:
    def test_names_lowercased_values_stripped(self):
        request = parse_request_head(
            head("GET / HTTP/1.1\nContent-Type:  application/json \n\n")
        )
        assert request.headers["content-type"] == "application/json"

    def test_header_without_colon(self):
        with pytest.raises(BadRequest):
            parse_request_head(head("GET / HTTP/1.1\nBogusHeader\n\n"))

    def test_obs_fold_rejected(self):
        with pytest.raises(BadRequest):
            parse_request_head(
                head("GET / HTTP/1.1\nA: one\n  two\n\n")
            )

    def test_space_before_colon_rejected(self):
        with pytest.raises(BadRequest):
            parse_request_head(head("GET / HTTP/1.1\nA : one\n\n"))


class TestKeepAlive:
    def test_http11_default_keep_alive(self):
        request = parse_request_head(head("GET / HTTP/1.1\n\n"))
        assert request.keep_alive

    def test_http11_connection_close(self):
        request = parse_request_head(
            head("GET / HTTP/1.1\nConnection: close\n\n")
        )
        assert not request.keep_alive

    def test_http10_default_close(self):
        request = parse_request_head(head("GET / HTTP/1.0\n\n"))
        assert not request.keep_alive

    def test_http10_explicit_keep_alive(self):
        request = parse_request_head(
            head("GET / HTTP/1.0\nConnection: Keep-Alive\n\n")
        )
        assert request.keep_alive


class TestBody:
    def make(self, **headers) -> HTTPRequest:
        return HTTPRequest(
            method="POST", target="/suggest", version="HTTP/1.1",
            headers=headers,
        )

    def test_no_body(self):
        assert self.make().content_length(100) == 0

    def test_declared_length(self):
        request = self.make(**{"content-length": "42"})
        assert request.content_length(100) == 42

    def test_oversized_body_is_413(self):
        request = self.make(**{"content-length": "101"})
        with pytest.raises(BadRequest) as excinfo:
            request.content_length(100)
        assert excinfo.value.status == 413

    @pytest.mark.parametrize("raw", ["-1", "abc", "1.5"])
    def test_malformed_length_is_400(self, raw):
        request = self.make(**{"content-length": raw})
        with pytest.raises(BadRequest) as excinfo:
            request.content_length(100)
        assert excinfo.value.status == 400

    def test_chunked_is_411(self):
        request = self.make(**{"transfer-encoding": "chunked"})
        with pytest.raises(BadRequest) as excinfo:
            request.content_length(100)
        assert excinfo.value.status == 411

    def test_json_object(self):
        request = self.make()
        request.body = b'{"query": "tree"}'
        assert request.json() == {"query": "tree"}

    @pytest.mark.parametrize("body", [
        b"not json", b'"a string"', b"[1,2]", b"\xff\xfe",
    ])
    def test_bad_json_bodies(self, body):
        request = self.make()
        request.body = body
        with pytest.raises(BadRequest):
            request.json()


class TestResponses:
    def test_canonical_json_is_deterministic(self):
        a = json_body({"b": 1, "a": [2, 3]})
        b = json_body({"a": [2, 3], "b": 1})
        assert a == b == b'{"a":[2,3],"b":1}'

    def test_build_response_framing(self):
        body = json_body({"ok": True})
        raw = build_response(200, body)
        head_bytes, _, got_body = raw.partition(b"\r\n\r\n")
        assert got_body == body
        lines = head_bytes.decode("ascii").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines

    def test_build_response_close_and_extra_headers(self):
        raw = build_response(
            503, b"{}", keep_alive=False,
            extra_headers=(("Retry-After", "2"),),
        )
        text = raw.decode("ascii")
        assert "HTTP/1.1 503 Service Unavailable" in text
        assert "Connection: close" in text
        assert "Retry-After: 2" in text

    def test_error_body_shape(self):
        payload = json.loads(error_body(
            "overloaded", "shed", retry_after=0.05
        ))
        assert payload == {
            "error": "overloaded",
            "message": "shed",
            "retry_after": 0.05,
        }


class TestRetryAfterHeader:
    @pytest.mark.parametrize("seconds,expect", [
        (None, "1"),      # no hint: never advertise 0
        (0.0, "1"),
        (0.05, "1"),      # sub-second rounds up
        (1.0, "1"),
        (1.2, "2"),
        (3.0, "3"),
    ])
    def test_rounding(self, seconds, expect):
        name, value = retry_after_header(seconds)
        assert name == "Retry-After"
        assert value == expect
