"""The asyncio HTTP front-end, exercised over real sockets.

Each test runs its own event loop (``asyncio.run``) with the front-end
on an ephemeral port; clients run in worker threads via
``asyncio.to_thread`` so the loop stays free to serve.  Slow-backend
scenarios use a stub suggester gated on a ``threading.Event`` — the
test releases it only once the interesting concurrent state (admission
full, single-flight populated, drain initiated) has been observed.
"""

import asyncio
import contextlib
import http.client
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.core.suggestion import CleaningStats, Suggestion
from repro.index.corpus import build_corpus_index
from repro.net.server import HTTPFrontEnd, ServeConfig
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture()
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


def make_service(corpus, **kwargs):
    kwargs.setdefault("config", XCleanConfig(max_errors=1))
    return SuggestionService(corpus, **kwargs)


@contextlib.asynccontextmanager
async def front_end(service, **config):
    config.setdefault("port", 0)
    config.setdefault("drain_grace", 5.0)
    fe = HTTPFrontEnd(service, ServeConfig(**config))
    await fe.start()
    runner = asyncio.ensure_future(fe.run())
    try:
        yield fe
    finally:
        fe.initiate_drain()
        await runner


def get(port: int, target: str):
    """One GET on a fresh connection; returns (status, headers, body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def post(port: int, target: str, payload: bytes,
         content_type: str = "application/json"):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            "POST", target, body=payload,
            headers={"Content-Type": content_type},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def raw_roundtrip(port: int, payload: bytes) -> bytes:
    """Send raw bytes, read until the server closes the connection."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
        s.sendall(payload)
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class GatedSuggester:
    """Stub backend that blocks each call until the test releases it."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0
        self.calls_lock = threading.Lock()
        self.last_stats = CleaningStats()

    def suggest(self, query, k=10):
        with self.calls_lock:
            self.calls += 1
        assert self.gate.wait(timeout=10), "test never released the gate"
        return [Suggestion(tokens=tuple(query.split()), score=1.0)]


class TestRouting:
    def test_suggest_get_happy_path(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        get, fe.port, "/suggest?q=tree+icdt&k=3"
                    )

        status, headers, body = asyncio.run(main())
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["query"] == "tree icdt"
        assert payload["partial"] is False
        assert payload["suggestions"]
        assert all(
            set(s) == {"text", "score", "result_type"}
            for s in payload["suggestions"]
        )

    def test_suggest_post_json_body(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        post, fe.port, "/suggest",
                        json.dumps({"query": "tree icdt", "k": 2}).encode(),
                    )

        status, _, body = asyncio.run(main())
        assert status == 200
        payload = json.loads(body)
        assert payload["k"] == 2
        assert len(payload["suggestions"]) <= 2

    def test_error_statuses(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    port = fe.port
                    return await asyncio.gather(
                        asyncio.to_thread(get, port, "/nope"),
                        asyncio.to_thread(get, port, "/suggest"),
                        asyncio.to_thread(get, port, "/suggest?q=x&k=0"),
                        asyncio.to_thread(get, port, "/suggest?q=x&k=abc"),
                        asyncio.to_thread(
                            post, port, "/healthz", b"{}"
                        ),
                        asyncio.to_thread(
                            post, port, "/suggest", b"not json"
                        ),
                    )

        results = asyncio.run(main())
        statuses = [status for status, _, _ in results]
        assert statuses == [404, 400, 400, 400, 405, 400]
        for _, _, body in results:
            payload = json.loads(body)
            assert "error" in payload and "message" in payload

    def test_stats_and_metrics_endpoints(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    port = fe.port
                    await asyncio.to_thread(get, port, "/suggest?q=tree")
                    return await asyncio.gather(
                        asyncio.to_thread(get, port, "/stats"),
                        asyncio.to_thread(get, port, "/metrics"),
                        asyncio.to_thread(
                            get, port, "/metrics?format=json"
                        ),
                    )

        stats, prom, metrics_json = asyncio.run(main())
        payload = json.loads(stats[2])
        assert payload["service"]["queries_served"] == 1
        assert payload["inflight"] == 0
        assert payload["front_end"]["requests_total"] >= 1
        assert b"http_requests_total" in prom[2]
        json.loads(metrics_json[2])  # valid JSON snapshot


class TestProtocol:
    def test_keep_alive_reuses_one_connection(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    def client():
                        conn = http.client.HTTPConnection(
                            "127.0.0.1", fe.port, timeout=10
                        )
                        statuses = []
                        for _ in range(3):
                            conn.request("GET", "/suggest?q=tree")
                            response = conn.getresponse()
                            response.read()
                            statuses.append(response.status)
                        conn.close()
                        return statuses

                    statuses = await asyncio.to_thread(client)
                    return statuses, fe.stats.connections_total

        statuses, connections = asyncio.run(main())
        assert statuses == [200, 200, 200]
        assert connections == 1

    def test_connection_close_honored(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        raw_roundtrip, fe.port,
                        b"GET /healthz HTTP/1.1\r\n"
                        b"Connection: close\r\n\r\n",
                    )

        raw = asyncio.run(main())
        # The server answered, then closed (recv saw EOF).
        assert raw.startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: close" in raw

    def test_malformed_request_line_is_400(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        raw_roundtrip, fe.port,
                        b"TOTAL GARBAGE\r\n\r\n",
                    )

        raw = asyncio.run(main())
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_oversized_body_is_413(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(
                    service, max_body_bytes=64
                ) as fe:
                    return await asyncio.to_thread(
                        raw_roundtrip, fe.port,
                        b"POST /suggest HTTP/1.1\r\n"
                        b"Content-Length: 100000\r\n\r\n",
                    )

        raw = asyncio.run(main())
        assert raw.startswith(b"HTTP/1.1 413 ")

    def test_oversized_head_is_431(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(
                    service, max_head_bytes=512
                ) as fe:
                    filler = b"X-Filler: " + b"a" * 2048 + b"\r\n"
                    return await asyncio.to_thread(
                        raw_roundtrip, fe.port,
                        b"GET /healthz HTTP/1.1\r\n" + filler + b"\r\n",
                    )

        raw = asyncio.run(main())
        assert raw.startswith(b"HTTP/1.1 431 ")


class TestBackpressure:
    def test_saturated_admission_is_503_with_retry_after(self, corpus):
        async def main():
            stub = GatedSuggester()
            with make_service(corpus, max_pending=1) as service:
                service.suggester = stub
                async with front_end(service) as fe:
                    port = fe.port
                    first = asyncio.ensure_future(asyncio.to_thread(
                        get, port, "/suggest?q=first"
                    ))
                    # Wait until the first request holds the only
                    # admission slot (its backend call started).
                    while stub.calls < 1:
                        await asyncio.sleep(0.01)
                    shed = await asyncio.to_thread(
                        get, port, "/suggest?q=second"
                    )
                    stub.gate.set()
                    served = await first
                    return served, shed, fe.stats

        served, shed, stats = asyncio.run(main())
        assert served[0] == 200
        status, headers, body = shed
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        payload = json.loads(body)
        assert payload["error"] == "overloaded"
        assert payload["retry_after"] > 0
        assert stats.shed_total == 1
        assert stats.responses_5xx_other == 0

    def test_deadline_partial_is_served_with_flag(self, corpus):
        async def main():
            service = make_service(
                corpus,
                config=XCleanConfig(
                    max_errors=1, deadline_seconds=1e-9
                ),
            )
            with service:
                async with front_end(service) as fe:
                    return await asyncio.to_thread(
                        get, fe.port, "/suggest?q=tree+icdt"
                    )

        status, _, body = asyncio.run(main())
        assert status == 200
        assert json.loads(body)["partial"] is True


class TestSingleFlight:
    N = 8

    def test_concurrent_identical_requests_coalesce(self, corpus):
        # asyncio.to_thread's default pool is cpu-sized and may hold
        # fewer threads than N concurrent clients — use our own.
        clients = ThreadPoolExecutor(max_workers=self.N)

        async def main():
            loop = asyncio.get_running_loop()
            stub = GatedSuggester()
            with make_service(corpus, result_cache_size=0) as service:
                service.suggester = stub
                async with front_end(service) as fe:
                    port = fe.port
                    tasks = [
                        loop.run_in_executor(
                            clients, get, port,
                            "/suggest?q=tree+icdt&k=3",
                        )
                        for _ in range(self.N)
                    ]
                    # Deterministic overlap: wait until one leader is
                    # computing and every other request has coalesced
                    # onto its flight, then release the backend.
                    deadline = loop.time() + 10.0
                    while (
                        fe.singleflight.coalesced < self.N - 1
                        or stub.calls < 1
                    ):
                        if loop.time() > deadline:
                            stub.gate.set()
                            pytest.fail(
                                "requests never coalesced: "
                                f"{fe.singleflight.coalesced} "
                                f"coalesced, {stub.calls} calls"
                            )
                        await asyncio.sleep(0.01)
                    stub.gate.set()
                    results = await asyncio.gather(*tasks)
                    return stub.calls, results, fe

        calls, results, fe = asyncio.run(main())
        assert calls == 1  # one backend execution for N requests
        assert all(status == 200 for status, _, _ in results)
        bodies = {body for _, _, body in results}
        assert len(bodies) == 1  # byte-identical fan-out
        assert fe.stats.coalesced_total == self.N - 1
        assert fe.stats.singleflight_leaders_total == 1
        snapshot = json.loads(
            fe.metrics.snapshot().to_json(indent=None)
        )
        assert (
            snapshot["counters"]["coalesced_queries_total"]
            == self.N - 1
        )

    def test_disabled_single_flight_computes_per_request(self, corpus):
        async def main():
            stub = GatedSuggester()
            stub.gate.set()  # no blocking: count executions only
            with make_service(corpus, result_cache_size=0) as service:
                service.suggester = stub
                async with front_end(
                    service, single_flight=False
                ) as fe:
                    port = fe.port
                    results = await asyncio.gather(*[
                        asyncio.to_thread(
                            get, port, "/suggest?q=tree+icdt&k=3"
                        )
                        for _ in range(self.N)
                    ])
                    return stub.calls, results, fe

        calls, results, fe = asyncio.run(main())
        assert all(status == 200 for status, _, _ in results)
        assert calls == self.N  # every request ran the backend
        assert fe.stats.coalesced_total == 0


class TestDrain:
    def test_drain_completes_inflight_request(self, corpus):
        async def main():
            stub = GatedSuggester()
            with make_service(corpus) as service:
                service.suggester = stub
                async with front_end(service) as fe:
                    inflight = asyncio.ensure_future(asyncio.to_thread(
                        get, fe.port, "/suggest?q=slow"
                    ))
                    while stub.calls < 1:
                        await asyncio.sleep(0.01)
                    fe.initiate_drain()
                    # New connections are refused once draining.
                    with pytest.raises(OSError):
                        await asyncio.to_thread(
                            get, fe.port, "/healthz"
                        )
                    stub.gate.set()
                    status, headers, body = await inflight
                    return status, headers, body, fe

        status, headers, body, fe = asyncio.run(main())
        assert status == 200
        assert json.loads(body)["suggestions"]
        # The connection is not reused across a drain.
        assert headers["Connection"] == "close"
        assert fe.draining

    def test_drain_cancels_idle_keep_alive_connections(self, corpus):
        async def main():
            with make_service(corpus) as service:
                async with front_end(service) as fe:
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", fe.port, timeout=10
                    )

                    def one_request():
                        conn.request("GET", "/healthz")
                        response = conn.getresponse()
                        response.read()
                        return response.status

                    status = await asyncio.to_thread(one_request)
                    # The connection now idles in keep-alive; a drain
                    # must not wait keep_alive_timeout for it.
                    began = asyncio.get_running_loop().time()
                    fe.initiate_drain()
                    await fe.drain()
                    elapsed = (
                        asyncio.get_running_loop().time() - began
                    )
                    conn.close()
                    return status, elapsed

        status, elapsed = asyncio.run(main())
        assert status == 200
        assert elapsed < 5.0
