"""The HTTP front-end mounted on a ShardedSuggestionService.

The front-end only touches the shared service surface (``admit`` /
``suggest_detailed`` / ``release`` / ``stats`` / ``corpus``), so a
shard coordinator must serve byte-identical responses to a
single-index service behind the same routes.
"""

import asyncio
import contextlib
import http.client
import json

import pytest

from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.core.shards import ShardedSuggestionService
from repro.index.corpus import build_corpus_index
from repro.index.sharding import build_sharded_snapshot
from repro.net.server import HTTPFrontEnd, ServeConfig
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture(scope="module")
def manifest(corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("fe-shards")
    return build_sharded_snapshot(corpus, str(directory), 2)


@contextlib.asynccontextmanager
async def front_end(service, **config):
    config.setdefault("port", 0)
    config.setdefault("drain_grace", 5.0)
    fe = HTTPFrontEnd(service, ServeConfig(**config))
    await fe.start()
    runner = asyncio.ensure_future(fe.run())
    try:
        yield fe
    finally:
        fe.initiate_drain()
        await runner


def get(port: int, target: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def serve_one(service, target: str):
    async def main():
        with service:
            async with front_end(service) as fe:
                return await asyncio.to_thread(get, fe.port, target)

    return asyncio.run(main())


class TestShardedFrontEnd:
    def test_suggest_happy_path(self, manifest):
        service = ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=1)
        )
        status, headers, body = serve_one(
            service, "/suggest?q=tree+icdt&k=3"
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["query"] == "tree icdt"
        assert payload["partial"] is False
        assert payload["suggestions"]

    def test_body_matches_single_index_front_end(
        self, corpus, manifest
    ):
        target = "/suggest?q=tree+icdt&k=5"
        single = serve_one(
            SuggestionService(
                corpus, config=XCleanConfig(max_errors=1)
            ),
            target,
        )
        sharded = serve_one(
            ShardedSuggestionService(
                manifest, config=XCleanConfig(max_errors=1)
            ),
            target,
        )
        assert single[0] == sharded[0] == 200
        assert single[2] == sharded[2]  # byte-identical payload

    def test_stats_endpoint_exposes_shard_counters(self, manifest):
        service = ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=1)
        )

        async def main():
            with service:
                async with front_end(service) as fe:
                    port = fe.port
                    await asyncio.to_thread(
                        get, port, "/suggest?q=tree+icdt"
                    )
                    return await asyncio.gather(
                        asyncio.to_thread(get, port, "/stats"),
                        asyncio.to_thread(get, port, "/metrics"),
                    )

        stats, prom = asyncio.run(main())
        assert stats[0] == 200
        payload = json.loads(stats[2])
        assert payload["service"]["queries_served"] == 1
        assert payload["service"]["shard_dispatches"] == 0
        assert payload["service"]["shards_omitted"] == 0
        assert b"shard_stage_seconds_total" in prom[2]

    def test_unanswerable_is_client_error(self, manifest):
        service = ShardedSuggestionService(
            manifest, config=XCleanConfig(max_errors=1)
        )
        status, _, body = serve_one(service, "/suggest?q=%21%21")
        assert status == 400
        assert "error" in json.loads(body)
