"""Tests for the ops plane: health model, process gauges, /statusz."""

from repro.obs import MetricsRegistry
from repro.obs.ops import (
    DEGRADED,
    NOT_READY,
    READY,
    Health,
    evaluate_health,
    export_process_gauges,
    process_runtime,
    status_payload,
)
from repro.obs.slo import NULL_SLO, SLOTracker


class TestEvaluateHealth:
    def test_nothing_firing_is_ready(self):
        health = evaluate_health(
            not_ready=[(False, "closed")],
            degraded=[(False, "breaker_open")],
        )
        assert health.state == READY
        assert health.reasons == []
        assert health.http_status == 200

    def test_degraded_collects_every_firing_reason(self):
        health = evaluate_health(
            degraded=[
                (True, "breaker_open"),
                (False, "snapshot_quarantined"),
                (True, "worker_pool_suspect"),
            ],
        )
        assert health.state == DEGRADED
        assert health.reasons == ["breaker_open", "worker_pool_suspect"]
        # Degraded still serves traffic: LBs keep routing, humans alert.
        assert health.http_status == 200

    def test_not_ready_dominates_degraded(self):
        health = evaluate_health(
            not_ready=[(True, "draining")],
            degraded=[(True, "breaker_open")],
        )
        assert health.state == NOT_READY
        assert health.reasons == ["draining"]
        assert health.http_status == 503

    def test_as_dict_shape(self):
        assert Health(READY).as_dict() == {
            "state": "ready", "reasons": [],
        }


class TestProcessRuntime:
    def test_sample_shape(self):
        sample = process_runtime()
        assert sample["pid"] > 0
        assert sample["rss_bytes"] > 0
        assert sample["threads"] >= 1
        assert sample["uptime_s"] >= 0.0
        assert len(sample["gc_counts"]) == 3
        assert len(sample["gc_collections"]) == 3

    def test_export_process_gauges(self):
        registry = MetricsRegistry()
        sample = export_process_gauges(registry)
        gauges = registry.snapshot().as_dict()["gauges"]
        assert gauges["proc_rss_bytes"] == sample["rss_bytes"]
        assert gauges["proc_threads"] == sample["threads"]
        assert 'proc_gc_collections{gen="0"}' in gauges
        assert 'proc_gc_collections{gen="2"}' in gauges

    def test_export_skips_disabled_registry(self):
        from repro.obs import NULL_METRICS

        sample = export_process_gauges(NULL_METRICS)
        assert sample["pid"] > 0  # still returns the sample


class _FakeService:
    """The minimal health()/status() surface status_payload needs."""

    def __init__(self, state=READY, reasons=()):
        self._health = Health(state, list(reasons))
        self.last_draining = None

    def health(self, *, draining=False):
        self.last_draining = draining
        return self._health

    def status(self):
        return {"mode": "fake", "data_generation": 3}


class TestStatusPayload:
    def test_composes_health_service_process(self):
        payload = status_payload(_FakeService())
        assert payload["health"]["state"] == "ready"
        assert payload["service"]["data_generation"] == 3
        assert payload["process"]["pid"] > 0
        assert payload["ts"] > 0
        assert "slo" not in payload
        assert "front_end" not in payload

    def test_draining_flag_reaches_service_health(self):
        service = _FakeService()
        status_payload(service, draining=True)
        assert service.last_draining is True

    def test_slo_report_included_when_enabled(self):
        slo = SLOTracker(windows=(60,))
        slo.record("served", 0.01)
        payload = status_payload(_FakeService(), slo=slo)
        (window,) = payload["slo"]["windows"]
        assert window["window"] == "1m"
        assert window["served"] == 1

    def test_null_slo_omitted(self):
        payload = status_payload(_FakeService(), slo=NULL_SLO)
        assert "slo" not in payload

    def test_front_end_section_passthrough(self):
        payload = status_payload(
            _FakeService(), front_end={"requests_total": 9}
        )
        assert payload["front_end"] == {"requests_total": 9}
