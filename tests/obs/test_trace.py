"""Tests for the span-tree tracer (repro.obs.trace)."""

import pickle

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_trace,
    new_trace_id,
)


class TestTraceLifecycle:
    def test_begin_end_produces_root(self):
        tracer = Tracer()
        tracer.begin("request", query="q")
        root = tracer.end()
        assert root is not None
        assert root.name == "request"
        assert root.attributes["query"] == "q"
        assert root.duration >= 0.0
        assert tracer.last_trace is root

    def test_trace_id_in_root_attributes(self):
        tracer = Tracer()
        tracer.begin("request")
        trace_id = tracer.trace_id
        root = tracer.end()
        assert root.attributes["trace_id"] == trace_id
        assert len(trace_id) == 16

    def test_explicit_trace_id_is_kept(self):
        tracer = Tracer()
        tracer.begin("worker", trace_id="abc123")
        root = tracer.end()
        assert root.attributes["trace_id"] == "abc123"

    def test_new_trace_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64

    def test_end_without_begin_is_none(self):
        assert Tracer().end() is None

    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        tracer.begin("request")
        with tracer.span("merge"):
            with tracer.span("score", groups=3):
                pass
            with tracer.span("score"):
                pass
        root = tracer.end()
        merge = root.children[0]
        assert merge.name == "merge"
        assert [c.name for c in merge.children] == ["score", "score"]
        assert merge.children[0].attributes["groups"] == 3

    def test_child_duration_within_parent(self):
        tracer = Tracer()
        tracer.begin("request")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        root = tracer.end()
        outer = root.children[0]
        inner = outer.children[0]
        assert inner.duration <= outer.duration
        assert outer.duration <= root.duration

    def test_span_outside_trace_records_nothing(self):
        tracer = Tracer()
        with tracer.span("orphan") as span:
            assert span is None
        assert tracer.last_trace is None

    def test_exception_annotates_and_closes_span(self):
        tracer = Tracer()
        tracer.begin("request")
        try:
            with tracer.span("merge"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        root = tracer.end()
        assert root.children[0].attributes["error"] == "RuntimeError"

    def test_end_unwinds_open_spans(self):
        tracer = Tracer()
        tracer.begin("request")
        tracer._push("left_open", {})
        root = tracer.end()
        assert root.children[0].duration >= 0.0
        assert tracer.current() is None


class TestEventsAndAnnotations:
    def test_event_lands_on_innermost_span(self):
        tracer = Tracer()
        tracer.begin("request")
        with tracer.span("merge"):
            tracer.event("deadline_expired", stage="merge")
        root = tracer.end()
        name, when, attrs = root.children[0].events[0]
        assert name == "deadline_expired"
        assert attrs == {"stage": "merge"}
        assert when > 0

    def test_annotate_merges_into_current_span(self):
        tracer = Tracer()
        tracer.begin("request")
        with tracer.span("merge"):
            tracer.annotate(groups=7)
        root = tracer.end()
        assert root.children[0].attributes["groups"] == 7

    def test_event_outside_trace_is_noop(self):
        tracer = Tracer()
        tracer.event("nothing")
        tracer.annotate(ignored=True)
        assert tracer.last_trace is None


class TestBudgets:
    def test_span_budget_drops_and_counts(self):
        tracer = Tracer(max_spans=3)
        tracer.begin("request")
        for _ in range(5):
            with tracer.span("s"):
                pass
        root = tracer.end()
        assert len(root.children) == 2  # root + 2 spans = 3
        assert root.attributes["spans_dropped"] == 3

    def test_event_budget_drops_and_counts(self):
        tracer = Tracer(max_events=2)
        tracer.begin("request")
        for index in range(5):
            tracer.event("e", index=index)
        root = tracer.end()
        assert len(root.events) == 2
        assert root.attributes["events_dropped"] == 3

    def test_attach_respects_span_budget(self):
        tracer = Tracer(max_spans=2)
        tracer.begin("request")
        big = Span("worker")
        big.children = [Span("a"), Span("b"), Span("c")]
        tracer.attach(big)
        root = tracer.end()
        assert root.children == []
        assert root.attributes["spans_dropped"] == 4


class TestAttach:
    def test_attach_grafts_subtree(self):
        tracer = Tracer()
        subtree = Span("worker", attributes={"pid": 42})
        subtree.children.append(Span("merge"))
        tracer.begin("batch")
        with tracer.span("pool"):
            tracer.attach(subtree)
        root = tracer.end()
        pool = root.children[0]
        assert pool.children[0] is subtree
        assert root.find("merge") is subtree.children[0]

    def test_attach_outside_trace_is_dropped(self):
        tracer = Tracer()
        tracer.attach(Span("worker"))
        assert tracer.last_trace is None


class TestSpanSerialization:
    def make_tree(self):
        root = Span("request", start=100.0, duration=0.5,
                    attributes={"trace_id": "t1", "query": "q"})
        child = Span("merge", start=100.1, duration=0.2)
        child.events.append(("evict", 100.15, {"candidate": "x"}))
        child.events.append(("plain", 100.16, None))
        root.children.append(child)
        return root

    def test_dict_round_trip(self):
        root = self.make_tree()
        clone = Span.from_dict(root.as_dict())
        assert clone.as_dict() == root.as_dict()
        assert clone.children[0].events == root.children[0].events

    def test_spans_pickle(self):
        root = self.make_tree()
        clone = pickle.loads(pickle.dumps(root))
        assert clone.as_dict() == root.as_dict()

    def test_walk_and_find(self):
        root = self.make_tree()
        assert [s.name for s in root.walk()] == ["request", "merge"]
        assert root.find("merge").duration == 0.2
        assert root.find("missing") is None

    def test_format_trace_outline(self):
        text = format_trace(self.make_tree())
        lines = text.splitlines()
        assert lines[0].startswith("request  500.000 ms")
        assert "query=q" in lines[0]
        assert "trace_id" not in lines[0]
        assert lines[1].lstrip().startswith("merge")
        assert any("* evict" in line for line in lines)


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_all_hooks_are_noops(self):
        tracer = NullTracer()
        assert tracer.begin("request") is None
        with tracer.span("merge", x=1) as span:
            assert span is None
        tracer.event("e")
        tracer.annotate(a=1)
        tracer.attach(Span("worker"))
        assert tracer.end() is None
        assert tracer.current() is None
        assert tracer.trace_id is None
        assert tracer.last_trace is None
