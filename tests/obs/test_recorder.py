"""Tests for the flight recorder (repro.obs.recorder)."""

import json

from repro.obs.export import validate_chrome_trace
from repro.obs.recorder import FlightEntry, FlightRecorder
from repro.obs.trace import Span


def make_entry(name="request", **kwargs) -> FlightEntry:
    span = Span(
        name, start=100.0, duration=0.002,
        attributes={"trace_id": kwargs.pop("trace_id", "t-" + name)},
    )
    return FlightEntry(span, query=name, latency_s=0.002, **kwargs)


class TestFlightEntry:
    def test_flags_and_notability(self):
        assert make_entry().notable is False
        assert make_entry(partial=True).flags() == ["partial"]
        assert make_entry(degraded=True).notable is True
        assert make_entry(faulted=True).flags() == ["faulted"]
        entry = make_entry(slow=True, error="Overloaded")
        assert entry.flags() == ["slow", "error"]

    def test_trace_id_comes_from_root_attributes(self):
        assert make_entry(trace_id="abc").trace_id == "abc"

    def test_json_line_round_trip(self):
        entry = make_entry(partial=True, error="QueryError")
        clone = FlightEntry.from_json_line(entry.to_json_line())
        assert clone.query == entry.query
        assert clone.partial and clone.error == "QueryError"
        assert clone.recorded_at == entry.recorded_at
        assert clone.trace.as_dict() == entry.trace.as_dict()


class TestFlightRecorder:
    def test_healthy_entries_ride_the_recent_ring(self):
        recorder = FlightRecorder(capacity=2)
        for index in range(5):
            recorder.record(make_entry(f"q{index}"))
        retained = [e.query for e in recorder.entries()]
        assert retained == ["q3", "q4"]
        assert recorder.recorded == 5
        assert len(recorder) == 2

    def test_notable_entries_survive_healthy_bursts(self):
        recorder = FlightRecorder(capacity=2, notable_capacity=4)
        recorder.record(make_entry("bad", degraded=True))
        for index in range(10):
            recorder.record(make_entry(f"ok{index}"))
        queries = [e.query for e in recorder.entries()]
        assert "bad" in queries
        assert recorder.notable_entries()[0].query == "bad"

    def test_slow_threshold_marks_entries(self):
        recorder = FlightRecorder(slow_threshold=0.001)
        entry = recorder.record(make_entry("slowpoke"))
        assert entry.slow is True
        assert recorder.notable_entries() == [entry]
        fast = FlightRecorder(slow_threshold=1.0).record(
            make_entry("fast")
        )
        assert fast.slow is False

    def test_find_by_trace_id(self):
        recorder = FlightRecorder()
        recorder.record(make_entry("a", trace_id="t1"))
        wanted = recorder.record(make_entry("b", trace_id="t2"))
        assert recorder.find("t2") is wanted
        assert recorder.find("missing") is None

    def test_dump_jsonl_envelope_and_entries(self):
        recorder = FlightRecorder()
        recorder.record(make_entry("a"))
        recorder.record(make_entry("b", partial=True))
        lines = recorder.dump_jsonl("unit_test").strip().splitlines()
        envelope = json.loads(lines[0])
        assert envelope["flight_record"] is True
        assert envelope["reason"] == "unit_test"
        assert envelope["retained"] == 2
        entries = [json.loads(line) for line in lines[1:]]
        assert {e["query"] for e in entries} == {"a", "b"}
        assert recorder.dumps == 1

    def test_dump_to_writes_file(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(make_entry("a"))
        path = tmp_path / "flight.jsonl"
        assert recorder.dump_to(str(path), "crash") == str(path)
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[0])["reason"] == "crash"
        restored = FlightEntry.from_json_line(lines[1])
        assert restored.query == "a"

    def test_chrome_trace_over_all_entries(self):
        recorder = FlightRecorder()
        recorder.record(make_entry("a"))
        recorder.record(make_entry("b", degraded=True))
        data = recorder.chrome_trace()
        assert validate_chrome_trace(data) == []
        assert {e["name"] for e in data["traceEvents"]} == {"a", "b"}

    def test_traces_jsonl_round_trips_via_export(self):
        from repro.obs.export import trace_from_json_line

        recorder = FlightRecorder()
        recorder.record(make_entry("a"))
        lines = recorder.traces_jsonl().strip().splitlines()
        assert trace_from_json_line(lines[0]).name == "a"
