"""Tests for export formats: Prometheus text, JSONL, Chrome traces."""

import json

from repro.obs import MetricsRegistry
from repro.obs.export import (
    chrome_trace,
    trace_from_json_line,
    trace_to_json_line,
    validate_chrome_trace,
)
from repro.obs.trace import Span, Tracer


class TestPrometheusText:
    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", q='say "hi"\\now')
        text = registry.to_prometheus()
        assert 'q="say \\"hi\\"\\\\now"' in text

    def test_histogram_ends_with_inf_bucket(self):
        registry = MetricsRegistry()
        registry.observe_stage("merge", 0.002)
        registry.observe_stage("merge", 99.0)  # beyond every bound
        text = registry.to_prometheus()
        inf_line = next(
            line for line in text.splitlines()
            if line.startswith("xclean_stage_seconds_bucket")
            and 'le="+Inf"' in line
        )
        # +Inf is cumulative over everything, overflow included.
        assert inf_line.endswith(" 2")
        assert 'xclean_stage_seconds_count{stage="merge"} 2' in text

    def test_bucket_series_is_monotonic(self):
        registry = MetricsRegistry()
        for value in (0.00001, 0.003, 0.04, 2.0, 50.0):
            registry.observe("request_seconds", value)
        text = registry.to_prometheus()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("xclean_request_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 5  # +Inf bucket equals count

    def test_newline_and_backslash_escaping(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", q="line1\nline2", p="a\\b")
        text = registry.to_prometheus()
        assert 'q="line1\\nline2"' in text
        assert 'p="a\\\\b"' in text
        # The exposition format is line-oriented: a raw newline in a
        # label value would split one sample into two garbage lines.
        for line in text.splitlines():
            assert "line2" not in line or "line1" in line

    def test_type_emitted_once_per_family_with_label_sets(self):
        registry = MetricsRegistry()
        registry.inc("queries_total", outcome="served")
        registry.inc("queries_total", outcome="shed")
        registry.inc("other_total")
        registry.inc("queries_total", outcome="error")
        text = registry.to_prometheus()
        type_lines = [
            line for line in text.splitlines()
            if line.startswith("# TYPE xclean_queries_total ")
        ]
        assert len(type_lines) == 1

    def test_family_samples_are_contiguous(self):
        # Interleave two counter families' series creation; the
        # export must still group each family into one block.
        registry = MetricsRegistry()
        registry.inc("a_total", x="1")
        registry.inc("b_total")
        registry.inc("a_total", x="2")
        text = registry.to_prometheus()
        owners = [
            line.split("{")[0].split(" ")[0]
            for line in text.splitlines()
            if not line.startswith("#")
        ]
        seen, last = set(), None
        for owner in owners:
            if owner != last:
                assert owner not in seen, f"{owner} split into blocks"
                seen.add(owner)
                last = owner

    def test_gauges_export_with_gauge_type(self):
        registry = MetricsRegistry()
        registry.set_gauge("proc_threads", 4)
        registry.set_gauge("slo_availability", 0.999, window="1m")
        text = registry.to_prometheus()
        assert "# TYPE xclean_proc_threads gauge" in text
        assert "xclean_proc_threads 4" in text
        assert 'xclean_slo_availability{window="1m"} 0.999' in text

    def test_promtext_lint(self):
        """Every exported line satisfies the exposition grammar."""
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
            r"(\{[a-zA-Z_][a-zA-Z0-9_]*="          # first label
            r"\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""    # escaped value
            r"(,[a-zA-Z_][a-zA-Z0-9_]*="
            r"\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*"
            r"\})?"
            r" (?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$"    # value
        )
        registry = MetricsRegistry()
        registry.inc("queries_total", outcome="served")
        registry.inc("odd_total", q='say "hi"\\now\nnext')
        registry.set_gauge("slo_availability", 1.0, window="1m")
        registry.observe_stage("merge", 0.004)
        text = registry.to_prometheus()
        assert text.endswith("\n")
        families_seen = set()
        current_family = None
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram")
                assert name not in families_seen
                families_seen.add(name)
                current_family = name
            elif line.startswith("# HELP "):
                continue
            else:
                assert sample.match(line), f"bad sample line: {line!r}"
                assert current_family is not None
                assert line.startswith(current_family)

    def test_counter_monotonicity_across_snapshots(self):
        registry = MetricsRegistry()
        values = []
        for _ in range(3):
            registry.inc("queries_total", 2)
            snapshot = registry.snapshot().as_dict()
            values.append(snapshot["counters"]["queries_total"])
        assert values == [2, 4, 6]
        assert all(b >= a for a, b in zip(values, values[1:]))


def _sample_trace() -> Span:
    tracer = Tracer()
    tracer.begin("request", query="q")
    with tracer.span("merge", groups=2):
        tracer.event("accumulator_evict", candidate="x y")
    tracer.end()
    return tracer.last_trace


class TestJsonlRoundTrip:
    def test_single_line(self):
        line = trace_to_json_line(_sample_trace())
        assert "\n" not in line
        json.loads(line)

    def test_round_trip_preserves_tree(self):
        root = _sample_trace()
        clone = trace_from_json_line(trace_to_json_line(root))
        assert clone.as_dict() == root.as_dict()
        assert clone.find("merge").events == root.find("merge").events


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        root = _sample_trace()
        data = chrome_trace(root)
        complete = [
            e for e in data["traceEvents"] if e["ph"] == "X"
        ]
        instants = [
            e for e in data["traceEvents"] if e["ph"] == "i"
        ]
        assert {e["name"] for e in complete} == {"request", "merge"}
        assert [e["name"] for e in instants] == ["accumulator_evict"]
        assert all(e["ts"] >= 0 for e in data["traceEvents"])

    def test_timestamps_relative_to_earliest_root(self):
        early = Span("a", start=10.0, duration=0.001)
        late = Span("b", start=11.0, duration=0.001)
        data = chrome_trace([late, early])
        by_name = {e["name"]: e for e in data["traceEvents"]}
        assert by_name["a"]["ts"] == 0.0
        assert by_name["b"]["ts"] == 1e6  # one second, in us

    def test_worker_pid_becomes_track(self):
        root = Span("batch", start=1.0, duration=0.01)
        worker = Span(
            "worker", start=1.001, duration=0.005,
            attributes={"pid": 4242},
        )
        worker.children.append(Span("merge", start=1.002))
        root.children.append(worker)
        data = chrome_trace(root)
        by_name = {e["name"]: e for e in data["traceEvents"]}
        assert by_name["batch"]["tid"] == 1
        assert by_name["worker"]["tid"] == 4242
        # Children inherit the worker's track.
        assert by_name["merge"]["tid"] == 4242

    def test_non_scalar_args_are_stringified(self):
        root = Span(
            "request", start=1.0,
            attributes={"tokens": ("a", "b"), "k": 5},
        )
        data = chrome_trace(root)
        args = data["traceEvents"][0]["args"]
        assert args["tokens"] == "('a', 'b')"
        assert args["k"] == 5
        json.dumps(data)  # fully serializable

    def test_empty_input(self):
        data = chrome_trace([])
        assert data["traceEvents"] == []
        assert validate_chrome_trace(data) == []


class TestValidateChromeTrace:
    def test_valid_export_has_no_problems(self):
        assert validate_chrome_trace(chrome_trace(_sample_trace())) == []

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]

    def test_missing_required_fields(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X"}]}
        )
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_negative_ts_and_missing_dur(self):
        event = {
            "name": "x", "cat": "c", "ph": "X",
            "ts": -1.0, "pid": 1, "tid": 1,
        }
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert any("non-negative number" in p for p in problems)
        assert any("needs" in p for p in problems)

    def test_non_object_event(self):
        problems = validate_chrome_trace({"traceEvents": ["nope"]})
        assert problems == ["event 0: not an object"]
