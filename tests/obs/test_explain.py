"""Tests for score provenance (repro.obs.explain).

The acceptance bar: ``suggest_explained`` must reconstruct the top-1
score from the logged factors alone to 1e-9 (relative) for BOTH
engines on a DBLP workload — in practice the reconstruction is
bit-identical because it replays the engine's own float operations in
the engine's own order.
"""

import math

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.eval.experiments import dblp_setting
from repro.index.corpus import build_corpus_index
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument

ENGINES = ("packed", "tuple")


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


@pytest.fixture(scope="module")
def setting():
    return dblp_setting("small")


def make_suggester(corpus, engine, **overrides):
    defaults = dict(max_errors=2, engine=engine)
    defaults.update(overrides)
    return XCleanSuggester(corpus, config=XCleanConfig(**defaults))


class TestReconstructionPaperExample:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_scores_reconstruct_exactly(self, corpus, engine):
        suggester = make_suggester(corpus, engine)
        explanation = suggester.suggest_explained("icdt tre", 5)
        assert explanation.suggestions, "expected candidates"
        for cand in explanation.suggestions:
            assert cand.reconstructed_score == cand.score

    def test_engines_agree_on_explanations(self, corpus):
        packed = make_suggester(corpus, "packed").suggest_explained(
            "icdt tre", 5
        )
        tuple_ = make_suggester(corpus, "tuple").suggest_explained(
            "icdt tre", 5
        )
        assert [c.tokens for c in packed.suggestions] == [
            c.tokens for c in tuple_.suggestions
        ]
        for a, b in zip(packed.suggestions, tuple_.suggestions):
            assert a.score == b.score
            assert a.result_type == b.result_type
            assert [g.group for g in a.groups] == [
                g.group for g in b.groups
            ]
            for ga, gb in zip(a.groups, b.groups):
                assert ga.mass == pytest.approx(gb.mass, rel=1e-12)


class TestReconstructionDblpWorkload:
    """The acceptance criterion, on real workload queries."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_top1_reconstructs_to_1e9(self, setting, engine):
        suggester = setting.xclean(engine=engine)
        records = next(iter(setting.workloads.values()))
        checked = 0
        for record in records[:5]:
            explanation = suggester.suggest_explained(
                record.dirty_text, 5
            )
            if not explanation.suggestions:
                continue
            top = explanation.suggestions[0]
            assert top.reconstructed_score == pytest.approx(
                top.score, rel=1e-9
            )
            checked += 1
        assert checked > 0, "no workload query produced suggestions"

    def test_explained_ranking_matches_plain_suggest(self, setting):
        suggester = setting.xclean()
        record = next(iter(setting.workloads.values()))[0]
        plain = suggester.suggest(record.dirty_text, 5)
        explanation = suggester.suggest_explained(
            record.dirty_text, 5
        )
        assert [s.tokens for s in plain] == [
            c.tokens for c in explanation.suggestions
        ]
        assert [s.score for s in plain] == [
            c.score for c in explanation.suggestions
        ]


class TestFactorInternals:
    def test_error_factors_multiply_to_error_weight(self, corpus):
        suggester = make_suggester(corpus, "packed")
        explanation = suggester.suggest_explained("icdt tre", 5)
        for cand in explanation.suggestions:
            product = 1.0
            for factor in cand.error_factors:
                product *= factor.probability
            assert product == pytest.approx(
                cand.error_weight, rel=1e-12
            )
            # Eq. 4/5 shape: p proportional to exp(-beta * ed), so an
            # exact-match variant can never have lower probability than
            # a farther one for the same keyword position.
            for factor in cand.error_factors:
                assert 0.0 < factor.probability <= 1.0
                assert factor.distance <= suggester.config.max_errors

    def test_entity_masses_resum_to_group_mass(self, corpus):
        suggester = make_suggester(corpus, "packed")
        explanation = suggester.suggest_explained("icdt tre", 5)
        for cand in explanation.suggestions:
            for group in cand.groups:
                total = math.fsum(e.mass for e in group.entities)
                assert total == pytest.approx(group.mass, rel=1e-9)
                for entity in group.entities:
                    product = entity.prior_weight
                    for factor in entity.factors:
                        product *= factor.probability
                    assert product == pytest.approx(
                        entity.mass, rel=1e-12
                    )

    def test_utility_winner_matches_result_type(self, corpus):
        suggester = make_suggester(corpus, "packed")
        explanation = suggester.suggest_explained("icdt tre", 5)
        for cand in explanation.suggestions:
            winners = [u for u in cand.utilities if u.winner]
            assert len(winners) == 1
            assert winners[0].path == cand.result_type
            # The winner maximizes U(C, p) (Eq. 7).
            best = max(u.utility for u in cand.utilities)
            assert winners[0].utility == pytest.approx(best)

    def test_length_prior_flows_into_prior_weight(self, corpus):
        suggester = make_suggester(corpus, "packed", prior="length")
        explanation = suggester.suggest_explained("icdt tre", 5)
        cand = explanation.suggestions[0]
        assert explanation.suggestions[0].prior == "length"
        weights = [
            entity.prior_weight
            for group in cand.groups
            for entity in group.entities
        ]
        assert all(w >= 1.0 for w in weights)
        assert cand.reconstructed_score == cand.score


class TestPruningEpochs:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_tiny_gamma_records_events_and_still_reconstructs(
        self, setting, engine
    ):
        suggester = setting.xclean(engine=engine, gamma=1)
        records = next(iter(setting.workloads.values()))
        saw_events = False
        checked = 0
        for record in records[:8]:
            explanation = suggester.suggest_explained(
                record.dirty_text, 3
            )
            saw_events = saw_events or bool(explanation.events)
            for event in explanation.events:
                assert event.kind in ("evicted", "rejected")
                assert 0.0 <= event.confidence <= 1.0
                if event.kind == "evicted":
                    assert event.evicted_by is not None
                    assert (
                        event.incoming_estimate >= event.estimate
                    )
            for cand in explanation.suggestions:
                # Mass epochs restarted by evictions must still fold
                # to the exact engine score.
                assert cand.reconstructed_score == pytest.approx(
                    cand.score, rel=1e-9
                )
                checked += 1
        assert checked > 0
        assert saw_events, "gamma=1 should force pruning decisions"

    def test_stats_counts_match_events(self, setting):
        suggester = setting.xclean(gamma=1)
        record = next(iter(setting.workloads.values()))[0]
        explanation = suggester.suggest_explained(
            record.dirty_text, 3
        )
        assert explanation.stats["accumulator_evictions"] == sum(
            1 for e in explanation.events if e.kind == "evicted"
        )


class TestExplanationShape:
    def test_as_dict_is_json_ready(self, corpus):
        import json

        suggester = make_suggester(corpus, "packed")
        explanation = suggester.suggest_explained("icdt tre", 3)
        data = json.loads(json.dumps(explanation.as_dict()))
        assert data["query"] == "icdt tre"
        assert data["engine"] == "packed"
        top = data["suggestions"][0]
        assert top["score"] == top["reconstructed_score"]
        assert top["groups"][0]["entities"]

    def test_render_mentions_every_candidate(self, corpus):
        suggester = make_suggester(corpus, "packed")
        explanation = suggester.suggest_explained("icdt tre", 3)
        text = explanation.render()
        for cand in explanation.suggestions:
            assert repr(cand.text) in text
        assert "P(Q|C)" in text
        assert "U(C," in text

    def test_recorder_detaches_after_explain(self, corpus):
        suggester = make_suggester(corpus, "packed")
        suggester.suggest_explained("icdt tre", 3)
        assert suggester._recorder is None
        # A later plain suggest is unaffected.
        assert suggester.suggest("icdt tre", 3)

    def test_unanswerable_query_has_no_candidates(self, corpus):
        suggester = make_suggester(corpus, "packed")
        explanation = suggester.suggest_explained("zzzzzz", 3)
        assert explanation.suggestions == ()
