"""Tests for the rolling multi-window SLO tracker."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    NULL_SLO,
    SLOTracker,
    window_label,
)


class FakeClock:
    """A steppable monotonic clock."""

    def __init__(self, value: float = 1000.0):
        self.value = value

    def __call__(self) -> float:
        return self.value

    def tick(self, seconds: float = 1.0) -> None:
        self.value += seconds


def make_tracker(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("windows", (10, 60))
    tracker = SLOTracker(clock=clock, **kwargs)
    return tracker, clock


class TestWindowLabel:
    def test_round_units(self):
        assert window_label(60) == "1m"
        assert window_label(300) == "5m"
        assert window_label(3600) == "1h"
        assert window_label(7200) == "2h"

    def test_odd_sizes_fall_back_to_seconds(self):
        assert window_label(10) == "10s"
        assert window_label(90) == "90s"


class TestRecording:
    def test_unknown_outcome_rejected(self):
        tracker, _ = make_tracker()
        with pytest.raises(ValueError):
            tracker.record("client_error")

    def test_availability_counts_partial_as_available(self):
        tracker, _ = make_tracker()
        tracker.record("served", 0.01)
        tracker.record("partial", 0.01)
        tracker.record("shed")
        tracker.record("error")
        view = tracker.window_report(10)
        assert view["total"] == 4
        assert view["availability"] == pytest.approx(0.5)

    def test_empty_window_is_healthy(self):
        tracker, _ = make_tracker()
        view = tracker.window_report(10)
        assert view["total"] == 0
        assert view["availability"] == 1.0
        assert view["availability_burn_rate"] == 0.0
        assert view["latency_attainment"] == 1.0
        assert view["latency_burn_rate"] == 0.0

    def test_latency_attainment_uses_threshold_at_record_time(self):
        tracker, _ = make_tracker(latency_threshold=0.1)
        tracker.record("served", 0.05)
        tracker.record("served", 0.5)
        view = tracker.window_report(10)
        assert view["latency_attainment"] == pytest.approx(0.5)

    def test_shed_does_not_count_against_latency(self):
        # A shed request has no latency to attain; only answered
        # requests (served/partial) enter the latency denominator.
        tracker, _ = make_tracker()
        tracker.record("served", 0.01)
        tracker.record("shed", 99.0)
        view = tracker.window_report(10)
        assert view["latency_attainment"] == 1.0


class TestBurnRates:
    def test_all_good_burns_nothing(self):
        tracker, _ = make_tracker(availability_objective=0.999)
        for _ in range(100):
            tracker.record("served", 0.01)
        assert tracker.window_report(10)["availability_burn_rate"] == 0.0

    def test_total_outage_burn_is_inverse_budget(self):
        # 100% bad with a 0.1% budget burns 1000x provisioned rate.
        tracker, _ = make_tracker(availability_objective=0.999)
        for _ in range(10):
            tracker.record("error")
        burn = tracker.window_report(10)["availability_burn_rate"]
        assert burn == pytest.approx(1000.0)

    def test_burn_exactly_at_objective_is_one(self):
        tracker, _ = make_tracker(availability_objective=0.9)
        for _ in range(9):
            tracker.record("served", 0.01)
        tracker.record("error")
        burn = tracker.window_report(10)["availability_burn_rate"]
        assert burn == pytest.approx(1.0)

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLOTracker(availability_objective=1.0)
        with pytest.raises(ValueError):
            SLOTracker(latency_objective=0.0)
        with pytest.raises(ValueError):
            SLOTracker(windows=())


class TestRingExpiry:
    def test_old_seconds_age_out_of_small_window(self):
        tracker, clock = make_tracker(windows=(10, 60))
        tracker.record("error")
        clock.tick(30)
        tracker.record("served", 0.01)
        # The 10s window only sees the recent success ...
        small = tracker.window_report(10)
        assert small["total"] == 1
        assert small["availability"] == 1.0
        # ... while the 60s window still remembers the error.
        large = tracker.window_report(60)
        assert large["total"] == 2
        assert large["availability"] == pytest.approx(0.5)

    def test_cells_recycle_after_largest_window(self):
        tracker, clock = make_tracker(windows=(10,))
        tracker.record("error")
        clock.tick(10)  # one full ring revolution for size-10
        tracker.record("served", 0.01)
        view = tracker.window_report(10)
        assert view["error"] == 0
        assert view["total"] == 1

    def test_same_second_shares_a_cell(self):
        tracker, clock = make_tracker(windows=(10,))
        clock.value = 2000.2
        tracker.record("served", 0.01)
        clock.value = 2000.9
        tracker.record("served", 0.01)
        assert tracker.window_report(10)["served"] == 2


class TestReport:
    def test_report_covers_all_windows_and_objectives(self):
        tracker, _ = make_tracker(windows=(60, 300))
        report = tracker.report()
        assert [w["window"] for w in report["windows"]] == ["1m", "5m"]
        assert report["objectives"]["availability"] == 0.999
        assert report["objectives"]["latency_threshold_s"] == 0.100

    def test_default_windows(self):
        tracker = SLOTracker()
        assert tracker.windows == tuple(sorted(DEFAULT_WINDOWS))

    def test_export_gauges(self):
        tracker, _ = make_tracker(windows=(60,))
        tracker.record("served", 0.01)
        registry = MetricsRegistry()
        tracker.export_gauges(registry)
        gauges = registry.snapshot().as_dict()["gauges"]
        assert gauges['slo_availability{window="1m"}'] == 1.0
        assert gauges['slo_availability_burn_rate{window="1m"}'] == 0.0
        assert gauges['slo_latency_attainment{window="1m"}'] == 1.0

    def test_export_gauges_skips_disabled_registry(self):
        from repro.obs import NULL_METRICS

        tracker, _ = make_tracker()
        tracker.record("served", 0.01)
        tracker.export_gauges(NULL_METRICS)  # must not raise


class TestNullTracker:
    def test_null_is_inert(self):
        NULL_SLO.record("anything-at-all", -1.0)  # no validation
        assert NULL_SLO.enabled is False
        assert NULL_SLO.window_report(60) == {}
        assert NULL_SLO.report()["windows"] == []
        NULL_SLO.export_gauges(MetricsRegistry())
