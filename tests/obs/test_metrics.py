"""Tests for the observability package (registry, export formats)."""

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("queries_total")
        registry.inc("queries_total", 2.0)
        assert registry.counter("queries_total").value == 3.0

    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total")
        second = registry.counter("a_total")
        assert first is second

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", layer="variant")
        registry.inc("hits_total", layer="merged")
        registry.inc("hits_total", layer="merged")
        assert registry.counter("hits_total", layer="variant").value == 1
        assert registry.counter("hits_total", layer="merged").value == 2


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.counts == [1, 2, 3]
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_quantiles_use_bucket_bounds(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.05, 5.0):
            h.observe(value)
        assert h.quantile(0.50) == 0.1
        assert h.quantile(0.95) == 10.0

    def test_overflow_quantile_is_inf(self):
        h = Histogram("lat", buckets=(0.1,))
        h.observe(5.0)
        assert h.quantile(0.5) == float("inf")

    def test_empty_quantile_is_zero(self):
        h = Histogram("lat")
        assert h.quantile(0.99) == 0.0

    def test_quantile_validation(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_summary_shape(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        summary = h.summary()
        assert summary["count"] == 1
        assert summary["mean"] == pytest.approx(0.5)
        assert summary["p50"] == 1.0


class TestStageTimers:
    def test_stage_records_into_stage_histogram(self):
        registry = MetricsRegistry()
        with registry.stage("merge"):
            pass
        h = registry.histogram("stage_seconds", stage="merge")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_observe_stage_shortcut(self):
        registry = MetricsRegistry()
        registry.observe_stage("score", 0.25)
        h = registry.histogram("stage_seconds", stage="score")
        assert h.count == 1
        assert h.sum == pytest.approx(0.25)


class TestSnapshotExport:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.inc("queries_total", 3)
        registry.observe_stage("tokenize", 0.0002)
        registry.observe_stage("tokenize", 0.0004)
        registry.observe("request_seconds", 0.01)
        return registry

    def test_as_dict_has_stage_view(self):
        snapshot = self.make_registry().snapshot()
        data = snapshot.as_dict()
        assert data["counters"]["queries_total"] == 3
        assert data["stages"]["tokenize"]["count"] == 2
        assert data["histograms"]["request_seconds"]["count"] == 1

    def test_to_json_round_trips(self):
        text = self.make_registry().to_json()
        data = json.loads(text)
        assert data["namespace"] == "xclean"
        assert data["counters"]["queries_total"] == 3

    def test_snapshot_is_frozen_copy(self):
        registry = self.make_registry()
        snapshot = registry.snapshot()
        registry.inc("queries_total", 100)
        assert snapshot.as_dict()["counters"]["queries_total"] == 3

    def test_prometheus_format(self):
        text = self.make_registry().to_prometheus()
        assert "# TYPE xclean_queries_total counter" in text
        assert "xclean_queries_total 3" in text
        assert "# TYPE xclean_stage_seconds histogram" in text
        assert (
            'xclean_stage_seconds_bucket{stage="tokenize",le="+Inf"} 2'
            in text
        )
        assert 'xclean_stage_seconds_count{stage="tokenize"} 2' in text
        # One TYPE header per family, not per labeled series.
        assert text.count("# TYPE xclean_stage_seconds histogram") == 1
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", stage='we"ird\\')
        text = registry.to_prometheus()
        assert 'stage="we\\"ird\\\\"' in text


class TestStageDeltas:
    """Cross-process stage-timer merging (pool workers -> parent)."""

    def test_state_and_merge_state_are_exact(self):
        source = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            source.observe(value)
        target = Histogram("lat", buckets=(0.1, 1.0))
        target.merge_state(*source.state())
        assert target.counts == source.counts
        assert target.sum == source.sum
        assert target.count == source.count

    def test_merge_state_rejects_mismatched_buckets(self):
        source = Histogram("lat", buckets=(0.1, 1.0))
        source.observe(0.5)
        target = Histogram("lat", buckets=(0.1,))
        with pytest.raises(ValueError):
            target.merge_state(*source.state())

    def test_stage_deltas_only_report_movement(self):
        registry = MetricsRegistry()
        registry.observe_stage("tokenize", 0.001)
        before = registry.stage_states()
        registry.observe_stage("merge", 0.002)
        deltas = registry.stage_deltas(before)
        assert set(deltas) == {"merge"}

    def test_worker_to_parent_merge_is_tally_exact(self):
        worker = MetricsRegistry()
        before = worker.stage_states()
        worker.observe_stage("merge", 0.002)
        worker.observe_stage("merge", 0.004)
        worker.observe_stage("score", 0.001)
        parent = MetricsRegistry()
        parent.observe_stage("merge", 0.01)
        parent.merge_stage_deltas(worker.stage_deltas(before))
        merged = parent.histogram("stage_seconds", stage="merge")
        assert merged.count == 3
        assert merged.sum == pytest.approx(0.016)
        assert parent.histogram(
            "stage_seconds", stage="score"
        ).count == 1

    def test_merge_skips_mismatched_layouts(self):
        worker = MetricsRegistry(buckets=(0.1, 1.0))
        before = worker.stage_states()
        worker.observe_stage("merge", 0.5)
        parent = MetricsRegistry()  # default bucket layout
        parent.merge_stage_deltas(worker.stage_deltas(before))
        assert parent.histogram(
            "stage_seconds", stage="merge"
        ).count == 0

    def test_custom_registry_buckets_apply_to_stages(self):
        registry = MetricsRegistry(buckets=(0.5, 2.0))
        registry.observe_stage("merge", 1.0)
        h = registry.histogram("stage_seconds", stage="merge")
        assert tuple(h.buckets) == (0.5, 2.0)
        assert h.counts == [0, 1]


class TestNullMetrics:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False

    def test_all_hooks_are_noops(self):
        NULL_METRICS.inc("a_total")
        NULL_METRICS.observe("b_seconds", 1.0)
        NULL_METRICS.observe_stage("merge", 1.0)
        NULL_METRICS.counter("a_total").inc()
        NULL_METRICS.histogram("b_seconds").observe(1.0)
        with NULL_METRICS.stage("merge"):
            pass
        assert NULL_METRICS.snapshot().as_dict()["counters"] == {}

    def test_exports_are_empty(self):
        assert json.loads(NULL_METRICS.to_json())["counters"] == {}
        assert NULL_METRICS.to_prometheus() == ""
