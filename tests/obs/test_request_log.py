"""Tests for structured JSONL request logging."""

import json

from repro.obs import MetricsRegistry
from repro.obs.logging import (
    NULL_REQUEST_LOG,
    NullRequestLog,
    RequestLog,
    new_request_id,
    read_jsonl,
)


class TestRequestLog:
    def test_writes_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with RequestLog(str(path)) as log:
            log.log({"id": "a", "status": 200})
            log.log({"id": "b", "status": 503})
        lines = read_jsonl(str(path))
        assert [line["id"] for line in lines] == ["a", "b"]
        assert lines[1]["status"] == 503

    def test_every_line_gets_a_timestamp(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with RequestLog(str(path), clock=lambda: 1234.5678901) as log:
            log.log({"id": "a"})
        (line,) = read_jsonl(str(path))
        assert line["ts"] == 1234.56789

    def test_record_fields_win_over_stamped_ts(self, tmp_path):
        # A caller-supplied ts is preserved, not overwritten.
        path = tmp_path / "access.jsonl"
        with RequestLog(str(path)) as log:
            log.log({"id": "a", "ts": 7.0})
        (line,) = read_jsonl(str(path))
        assert line["ts"] == 7.0

    def test_lines_are_valid_json_and_sorted(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with RequestLog(str(path)) as log:
            log.log({"zeta": 1, "alpha": 2})
        raw = path.read_text(encoding="utf-8").strip()
        assert json.loads(raw)
        assert raw.index('"alpha"') < raw.index('"zeta"')

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = RequestLog(str(path))
        assert not path.exists()  # nothing logged yet
        log.log({"id": "a"})
        assert path.exists()
        log.close()

    def test_append_mode_across_reopens(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with RequestLog(str(path)) as log:
            log.log({"id": "a"})
        with RequestLog(str(path)) as log:
            log.log({"id": "b"})
        assert [r["id"] for r in read_jsonl(str(path))] == ["a", "b"]

    def test_file_like_target(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            log = RequestLog(handle)
            log.log({"id": "a"})
        assert read_jsonl(str(path))[0]["id"] == "a"

    def test_failure_never_raises_and_bumps_counter(self, tmp_path):
        registry = MetricsRegistry()
        log = RequestLog(
            str(tmp_path / "missing-dir" / "access.jsonl"),
            metrics=registry,
        )
        log.log({"id": "a"})  # open fails: parent dir does not exist
        log.log({"id": "b"})  # still must not raise
        counters = registry.snapshot().as_dict()["counters"]
        assert counters["request_log_errors_total"] >= 1
        log.close()

    def test_unserializable_record_does_not_raise(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = RequestLog(str(path))
        log.log({"id": object()})  # json.dumps raises TypeError inside
        log.log({"id": "ok"})
        log.close()
        ids = [r["id"] for r in read_jsonl(str(path))]
        assert "ok" in ids

    def test_close_is_idempotent(self, tmp_path):
        log = RequestLog(str(tmp_path / "a.jsonl"))
        log.log({"id": "a"})
        log.close()
        log.close()


class TestNullRequestLog:
    def test_inert(self):
        assert NULL_REQUEST_LOG.enabled is False
        NULL_REQUEST_LOG.log({"id": "a"})
        NULL_REQUEST_LOG.close()
        with NullRequestLog() as log:
            log.log({"anything": 1})


class TestRequestId:
    def test_ids_are_unique_hex(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        for value in ids:
            assert len(value) == 16
            int(value, 16)
