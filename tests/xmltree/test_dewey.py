"""Tests for Dewey code parsing, ordering, and tree relations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DeweyError
from repro.xmltree import dewey

codes = st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6).map(
    tuple
)


class TestParseFormat:
    def test_parse_simple(self):
        assert dewey.parse("1.2.3") == (1, 2, 3)

    def test_parse_single(self):
        assert dewey.parse("1") == (1,)

    def test_format_roundtrip(self):
        assert dewey.format_code((1, 2, 3)) == "1.2.3"

    def test_parse_rejects_empty(self):
        with pytest.raises(DeweyError):
            dewey.parse("")

    def test_parse_rejects_zero_component(self):
        with pytest.raises(DeweyError):
            dewey.parse("1.0.2")

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(DeweyError):
            dewey.parse("1.x.2")

    def test_parse_rejects_negative(self):
        with pytest.raises(DeweyError):
            dewey.parse("1.-2")

    def test_format_rejects_empty(self):
        with pytest.raises(DeweyError):
            dewey.format_code(())

    @given(codes)
    def test_roundtrip_property(self, code):
        assert dewey.parse(dewey.format_code(code)) == code


class TestRelations:
    def test_ancestor_proper(self):
        assert dewey.is_ancestor((1,), (1, 2))
        assert dewey.is_ancestor((1, 2), (1, 2, 7, 4))

    def test_ancestor_not_self(self):
        assert not dewey.is_ancestor((1, 2), (1, 2))

    def test_ancestor_or_self(self):
        assert dewey.is_ancestor_or_self((1, 2), (1, 2))
        assert dewey.is_ancestor_or_self((1,), (1, 9))

    def test_sibling_not_ancestor(self):
        assert not dewey.is_ancestor((1, 2), (1, 3, 1))

    def test_depth(self):
        assert dewey.depth((1,)) == 1
        assert dewey.depth((1, 4, 2)) == 3

    def test_parent(self):
        assert dewey.parent((1, 2, 3)) == (1, 2)

    def test_parent_of_root_raises(self):
        with pytest.raises(DeweyError):
            dewey.parent((1,))

    @given(codes, codes)
    def test_ancestor_implies_document_order(self, a, b):
        if dewey.is_ancestor(a, b):
            assert a < b  # ancestors precede descendants in doc order


class TestDocumentOrder:
    def test_three_way(self):
        assert dewey.compare_document_order((1, 2), (1, 3)) == -1
        assert dewey.compare_document_order((1, 3), (1, 2)) == 1
        assert dewey.compare_document_order((1, 2), (1, 2)) == 0

    def test_prefix_precedes(self):
        # An ancestor comes before its descendants in document order.
        assert dewey.compare_document_order((1,), (1, 1)) == -1

    @given(codes, codes)
    def test_consistent_with_tuple_order(self, a, b):
        cmp = dewey.compare_document_order(a, b)
        if a < b:
            assert cmp == -1
        elif a > b:
            assert cmp == 1
        else:
            assert cmp == 0


class TestTruncateAndLCA:
    def test_truncate(self):
        assert dewey.truncate((1, 2, 3, 4), 2) == (1, 2)

    def test_truncate_full_depth(self):
        assert dewey.truncate((1, 2), 2) == (1, 2)

    def test_truncate_out_of_range(self):
        with pytest.raises(DeweyError):
            dewey.truncate((1, 2), 3)
        with pytest.raises(DeweyError):
            dewey.truncate((1, 2), 0)

    def test_common_prefix(self):
        assert dewey.common_prefix((1, 2, 3), (1, 2, 5)) == (1, 2)

    def test_common_prefix_disjoint(self):
        assert dewey.common_prefix((1,), (2,)) == ()

    def test_lca_basic(self):
        assert dewey.lca([(1, 2, 3), (1, 2, 5), (1, 2, 3, 1)]) == (1, 2)

    def test_lca_single(self):
        assert dewey.lca([(1, 4)]) == (1, 4)

    def test_lca_empty_raises(self):
        with pytest.raises(DeweyError):
            dewey.lca([])

    def test_lca_disjoint_roots_raises(self):
        with pytest.raises(DeweyError):
            dewey.lca([(1, 2), (2, 1)])

    @given(st.lists(codes, min_size=1, max_size=5))
    def test_lca_is_common_ancestor(self, code_list):
        # Force a shared root so lca is defined.
        rooted = [(1,) + c for c in code_list]
        ancestor = dewey.lca(rooted)
        for code in rooted:
            assert dewey.is_ancestor_or_self(ancestor, code)
