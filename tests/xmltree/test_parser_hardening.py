"""Hostile-input hardening of the XML parser (typed errors, no hangs)."""

import pytest

from repro.exceptions import XMLParseError
from repro.xmltree.document import XMLDocument
from repro.xmltree.parser import MAX_ELEMENT_DEPTH, parse_document


def _nested(depth):
    opens = "".join(f"<n{i}>" for i in range(depth))
    closes = "".join(f"</n{i}>" for i in reversed(range(depth)))
    return f"{opens}x{closes}"


class TestDepthGuard:
    def test_depth_at_limit_parses(self):
        root = parse_document(_nested(MAX_ELEMENT_DEPTH))
        assert root.label == "n0"

    def test_depth_past_limit_raises_typed(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_document(_nested(MAX_ELEMENT_DEPTH + 1))
        assert "depth" in str(excinfo.value)

    def test_custom_limit(self):
        parse_document(_nested(3), max_depth=3)
        with pytest.raises(XMLParseError):
            parse_document(_nested(4), max_depth=3)

    def test_siblings_do_not_accumulate_depth(self):
        # Depth is nesting, not element count: many siblings are fine.
        body = "".join(f"<c>{i}</c>" for i in range(MAX_ELEMENT_DEPTH * 2))
        root = parse_document(f"<root>{body}</root>")
        assert len(root.children) == MAX_ELEMENT_DEPTH * 2


class TestBytesInput:
    def test_utf8_bytes_parse(self):
        root = parse_document("<a>héllo</a>".encode("utf-8"))
        assert root.text == "héllo"

    def test_invalid_utf8_raises_typed_with_offset(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_document(b"<a>\xff\xfe</a>")
        message = str(excinfo.value)
        assert "UTF-8" in message
        assert "byte 3" in message

    def test_str_input_unchanged(self):
        assert parse_document("<a>x</a>").text == "x"


class TestTruncatedDocuments:
    @pytest.mark.parametrize(
        "text",
        [
            "<a><b>x</b>",
            "<a",
            "<a><b></a>",
            "<a>text",
        ],
    )
    def test_truncated_raises_typed(self, text):
        with pytest.raises(XMLParseError):
            parse_document(text)


class TestDocumentFileLoading:
    def test_from_file_non_utf8_raises_typed(self, tmp_path):
        path = tmp_path / "latin.xml"
        path.write_bytes("<a>caf\xe9</a>".encode("latin-1"))
        with pytest.raises(XMLParseError):
            XMLDocument.from_file(str(path))

    def test_from_file_utf8_loads(self, tmp_path):
        path = tmp_path / "ok.xml"
        path.write_bytes("<a>café</a>".encode("utf-8"))
        document = XMLDocument.from_file(str(path))
        assert document.root.text == "café"

    def test_from_string_accepts_bytes(self):
        document = XMLDocument.from_string(b"<a>x</a>")
        assert document.root.text == "x"
