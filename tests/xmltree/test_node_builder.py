"""Tests for XMLNode, the tree builder, and the paper's example tree."""

import pytest

from repro.xmltree.builder import build_node, build_tree, paper_example_tree
from repro.xmltree.node import XMLNode


class TestBuilder:
    def test_leaf_with_text(self):
        node = build_node(("title", "hello world"))
        assert node.label == "title"
        assert node.text == "hello world"
        assert node.is_leaf

    def test_nested_children(self):
        node = build_node(("a", [("b", "x"), ("c", "y")]))
        assert [c.label for c in node.children] == ["b", "c"]

    def test_text_and_children(self):
        node = build_node(("a", "t", [("b", "x")]))
        assert node.text == "t"
        assert node.children[0].label == "b"

    def test_rejects_non_tuple(self):
        with pytest.raises(ValueError):
            build_node("bare string")  # type: ignore[arg-type]

    def test_rejects_empty_label(self):
        with pytest.raises(ValueError):
            build_node(("", "text"))

    def test_rejects_double_text(self):
        with pytest.raises(ValueError):
            build_node(("a", "t1", "t2"))  # type: ignore[arg-type]


class TestDeweyAssignment:
    def test_root_code(self):
        tree = build_tree(("a", [("b", "x")]))
        assert tree.dewey == (1,)
        assert tree.children[0].dewey == (1, 1)

    def test_sibling_numbering(self):
        tree = build_tree(("a", [("b",), ("c",), ("d",)]))
        assert [c.dewey for c in tree.children] == [(1, 1), (1, 2), (1, 3)]

    def test_deep_assignment(self):
        tree = build_tree(("a", [("b", [("c", [("d", "x")])])]))
        leaf = tree.children[0].children[0].children[0]
        assert leaf.dewey == (1, 1, 1, 1)

    def test_custom_root_code(self):
        tree = build_tree(("a", [("b",)]), root_code=(1, 5))
        assert tree.dewey == (1, 5)
        assert tree.children[0].dewey == (1, 5, 1)


class TestTraversal:
    def test_iter_subtree_document_order(self):
        tree = build_tree(("a", [("b", [("c",)]), ("d",)]))
        labels = [n.label for n in tree.iter_subtree()]
        assert labels == ["a", "b", "c", "d"]

    def test_iter_with_paths(self):
        tree = build_tree(("a", [("b", [("c",)])]))
        pairs = [(n.label, p) for n, p in tree.iter_with_paths()]
        assert pairs == [
            ("a", ("a",)),
            ("b", ("a", "b")),
            ("c", ("a", "b", "c")),
        ]

    def test_find_by_dewey(self):
        tree = build_tree(("a", [("b", [("c", "x")]), ("d",)]))
        found = tree.find((1, 1, 1))
        assert found is not None and found.label == "c"

    def test_find_missing_returns_none(self):
        tree = build_tree(("a", [("b",)]))
        assert tree.find((1, 9)) is None

    def test_find_outside_subtree_returns_none(self):
        tree = build_tree(("a", [("b",)]))
        subtree = tree.children[0]
        assert subtree.find((1,)) is None

    def test_subtree_text_concatenates_in_order(self):
        tree = build_tree(("a", [("b", "first"), ("c", [("d", "second")])]))
        assert tree.subtree_text() == "first second"


class TestPaperExampleTree:
    """The fixture must be consistent with Example 3's f_w^p counts."""

    def test_shape(self):
        tree = paper_example_tree()
        assert [c.label for c in tree.children] == ["b", "c", "d", "d", "c"]

    def test_icde_anchor_position(self):
        # Example 5: the first anchor is node 1.2.3.1 (an icde leaf).
        tree = paper_example_tree()
        node = tree.find((1, 2, 3, 1))
        assert node is not None and node.text == "icde"

    def _count(self, tree: XMLNode, path: tuple, token: str) -> int:
        """f_token^path: nodes of that path whose subtree contains token."""
        count = 0
        for node, node_path in tree.iter_with_paths():
            if node_path == path and token in node.subtree_text().split():
                count += 1
        return count

    def test_example3_counts(self):
        tree = paper_example_tree()
        assert self._count(tree, ("a", "c"), "trie") == 2
        assert self._count(tree, ("a", "c", "x"), "trie") == 3
        assert self._count(tree, ("a", "d"), "trie") == 2
        assert self._count(tree, ("a", "d", "x"), "trie") == 2
        assert self._count(tree, ("a", "c"), "icde") == 1
        assert self._count(tree, ("a", "c", "x"), "icde") == 1
        assert self._count(tree, ("a", "d"), "icde") == 2
        assert self._count(tree, ("a", "d", "x"), "icde") == 2

    def test_example5_skip_targets(self):
        # After skip_to(1.2): tree → 1.2.2.1, trees → exhausted,
        # trie → 1.2.1.1 (Example 5's trace).
        tree = paper_example_tree()
        tree_node = tree.find((1, 2, 2, 1))
        trie_node = tree.find((1, 2, 1, 1))
        assert tree_node is not None and tree_node.text == "tree"
        assert trie_node is not None and trie_node.text == "trie"
        # 'trees' occurs only under 1.1.
        occurrences = [
            n.dewey
            for n in tree.iter_subtree()
            if n.text == "trees" and n.dewey is not None
        ]
        assert occurrences == [(1, 1, 1, 1)]
