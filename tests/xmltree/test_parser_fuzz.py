"""Fuzz tests: the parser must parse or raise XMLParseError — nothing else."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import XMLParseError
from repro.xmltree.parser import parse_document, serialize


class TestFuzzRobustness:
    @settings(max_examples=300, deadline=None)
    @given(st.text(max_size=200))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_document(text)
        except XMLParseError:
            pass  # rejection is the expected failure mode

    @settings(max_examples=200, deadline=None)
    @given(
        st.text(
            alphabet='<>&/"=abc! -',  # XML-syntax-heavy alphabet
            max_size=120,
        )
    )
    def test_syntax_soup_never_crashes(self, text):
        try:
            parse_document(text)
        except XMLParseError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet="ab<>&;", max_size=60))
    def test_wrapped_payload_never_crashes(self, payload):
        try:
            root = parse_document(f"<root>{payload}</root>")
        except XMLParseError:
            return
        # If it parsed, it must also serialize and reparse cleanly.
        parse_document(serialize(root))


class TestStructuredFuzz:
    labels = st.sampled_from(["a", "b", "item", "x1"])

    @st.composite
    def xml_text(draw, self=None):
        labels = st.sampled_from(["a", "b", "item"])

        def element(depth: int) -> str:
            label = draw(labels)
            if depth >= 2 or draw(st.booleans()):
                body = draw(
                    st.text(
                        alphabet="abc 123",
                        max_size=12,
                    )
                )
                return f"<{label}>{body}</{label}>"
            children = "".join(
                element(depth + 1)
                for _ in range(draw(st.integers(1, 3)))
            )
            return f"<{label}>{children}</{label}>"

        return element(0)

    @settings(max_examples=100, deadline=None)
    @given(xml_text())
    def test_wellformed_documents_roundtrip(self, text):
        root = parse_document(text)
        again = parse_document(serialize(root))
        original = [
            (n.label, n.text.split()) for n in root.iter_subtree()
        ]
        restored = [
            (n.label, n.text.split()) for n in again.iter_subtree()
        ]
        assert restored == original
