"""Tests for the hand-rolled XML parser."""

import pytest

from repro.exceptions import XMLParseError
from repro.xmltree.parser import (
    decode_entities,
    parse_document,
    serialize,
)


class TestEntities:
    def test_predefined(self):
        assert decode_entities("a &amp; b &lt; c &gt; d") == "a & b < c > d"

    def test_quotes(self):
        assert decode_entities("&quot;x&apos;") == "\"x'"

    def test_numeric_decimal(self):
        assert decode_entities("&#65;") == "A"

    def test_numeric_hex(self):
        assert decode_entities("&#x41;") == "A"

    def test_no_ampersand_fast_path(self):
        assert decode_entities("plain") == "plain"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLParseError):
            decode_entities("&nope;")

    def test_unterminated_raises(self):
        with pytest.raises(XMLParseError):
            decode_entities("&amp")


class TestBasicParsing:
    def test_single_element(self):
        root = parse_document("<a>hello</a>")
        assert root.label == "a"
        assert root.text == "hello"

    def test_nested(self):
        root = parse_document("<a><b>x</b><c>y</c></a>")
        assert [c.label for c in root.children] == ["b", "c"]
        assert root.children[0].text == "x"

    def test_self_closing(self):
        root = parse_document("<a><b/><c /></a>")
        assert [c.label for c in root.children] == ["b", "c"]

    def test_whitespace_only_text_ignored(self):
        root = parse_document("<a>\n  <b>x</b>\n</a>")
        assert root.text == ""
        assert len(root.children) == 1

    def test_declaration_and_doctype_skipped(self):
        text = '<?xml version="1.0"?><!DOCTYPE dblp SYSTEM "d.dtd"><a>x</a>'
        assert parse_document(text).text == "x"

    def test_comments_skipped(self):
        root = parse_document("<a><!-- note --><b>x</b><!-- end --></a>")
        assert [c.label for c in root.children] == ["b"]

    def test_cdata(self):
        root = parse_document("<a><![CDATA[1 < 2 & 3]]></a>")
        assert root.text == "1 < 2 & 3"

    def test_entities_in_text(self):
        root = parse_document("<a>schn&#252;tze</a>")
        assert root.text == "schnütze"

    def test_trailing_comment_allowed(self):
        root = parse_document("<a>x</a><!-- done -->")
        assert root.text == "x"


class TestAttributes:
    def test_attribute_becomes_child(self):
        root = parse_document('<a key="mdate" other="2009">x</a>')
        assert root.children[0].label == "@key"
        assert root.children[0].text == "mdate"
        assert root.children[1].label == "@other"

    def test_attribute_entities_decoded(self):
        root = parse_document('<a t="x &amp; y"/>')
        assert root.children[0].text == "x & y"

    def test_single_quoted(self):
        root = parse_document("<a t='v'/>")
        assert root.children[0].text == "v"


class TestMixedContent:
    def test_text_runs_wrapped(self):
        root = parse_document("<a>before<b>x</b>after</a>")
        labels = [c.label for c in root.children]
        assert labels == ["#text", "b", "#text"]
        assert root.children[0].text == "before"
        assert root.children[2].text == "after"
        assert root.text == ""

    def test_pure_text_runs_joined(self):
        root = parse_document("<a>one<!-- c -->two</a>")
        assert root.text == "one two"


class TestErrors:
    def test_mismatched_tags(self):
        with pytest.raises(XMLParseError):
            parse_document("<a><b>x</c></a>")

    def test_unterminated_element(self):
        with pytest.raises(XMLParseError):
            parse_document("<a><b>x</b>")

    def test_content_after_root(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>x</a><b>y</b>")

    def test_garbage(self):
        with pytest.raises(XMLParseError):
            parse_document("just text")

    def test_unquoted_attribute(self):
        with pytest.raises(XMLParseError):
            parse_document("<a k=v>x</a>")

    def test_error_carries_position(self):
        try:
            parse_document("<a>&bad;</a>")
        except XMLParseError as exc:
            assert exc.position >= 0
        else:  # pragma: no cover
            pytest.fail("expected XMLParseError")


class TestSerializeRoundTrip:
    def test_roundtrip_structure(self):
        text = '<dblp><article key="x"><title>a &amp; b</title></article></dblp>'
        root = parse_document(text)
        again = parse_document(serialize(root))
        assert again.children[0].children[0].label == "@key"
        title = again.children[0].children[1]
        assert title.label == "title"
        assert title.text == "a & b"

    def test_roundtrip_self_closing(self):
        root = parse_document("<a><b/></a>")
        again = parse_document(serialize(root))
        assert again.children[0].label == "b"


class TestLatinEntities:
    def test_uuml_in_text(self):
        root = parse_document("<author>hinrich sch&uuml;tze</author>")
        assert root.text == "hinrich schütze"

    def test_eacute_in_attribute(self):
        root = parse_document('<a name="ren&eacute;e"/>')
        assert root.children[0].text == "renée"

    def test_dblp_style_record(self):
        text = (
            "<dblp><article>"
            "<author>J&ouml;rg M&uuml;ller</author>"
            "<title>Queries &amp; answers</title>"
            "</article></dblp>"
        )
        root = parse_document(text)
        author = root.children[0].children[0]
        assert author.text == "Jörg Müller"

    def test_strict_mode_rejects_latin(self):
        from repro.xmltree.parser import decode_entities

        with pytest.raises(XMLParseError):
            decode_entities("sch&uuml;tze", extra_entities={})

    def test_custom_entity_table(self):
        from repro.xmltree.parser import decode_entities

        assert decode_entities(
            "&smiley;", extra_entities={"smiley": ":-)"}
        ) == ":-)"
