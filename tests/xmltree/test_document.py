"""Tests for XMLDocument: construction, navigation, Table I statistics."""

from repro.xmltree.builder import build_tree
from repro.xmltree.document import VIRTUAL_ROOT_LABEL, XMLDocument
from repro.xmltree.node import XMLNode


def small_doc() -> XMLDocument:
    return XMLDocument.from_string(
        "<dblp>"
        "<article><title>tree search</title><author>jane</author></article>"
        "<article><title>trie index</title></article>"
        "</dblp>"
    )


class TestConstruction:
    def test_from_string_assigns_deweys(self):
        doc = small_doc()
        assert doc.root.dewey == (1,)
        assert doc.root.children[0].dewey == (1, 1)

    def test_from_trees_adds_virtual_root(self):
        t1 = XMLNode("a")
        t2 = XMLNode("b")
        doc = XMLDocument.from_trees([t1, t2])
        assert doc.root.label == VIRTUAL_ROOT_LABEL
        assert [c.label for c in doc.root.children] == ["a", "b"]
        assert t1.dewey == (1, 1)
        assert t2.dewey == (1, 2)

    def test_from_strings(self):
        doc = XMLDocument.from_strings(["<a>x</a>", "<b>y</b>"])
        assert len(doc.root.children) == 2

    def test_prebuilt_tree_keeps_deweys(self):
        tree = build_tree(("a", [("b", "x")]))
        doc = XMLDocument(tree)
        assert doc.root.dewey == (1,)


class TestNavigation:
    def test_node_at(self):
        doc = small_doc()
        node = doc.node_at((1, 1, 1))
        assert node is not None and node.label == "title"

    def test_node_at_missing(self):
        assert small_doc().node_at((1, 9, 9)) is None

    def test_iter_nodes_in_document_order(self):
        doc = small_doc()
        deweys = [n.dewey for n in doc.iter_nodes()]
        assert deweys == sorted(deweys)

    def test_subtree_text(self):
        doc = small_doc()
        assert doc.subtree_text((1, 1)) == "tree search jane"

    def test_subtree_text_missing_node(self):
        assert small_doc().subtree_text((1, 9)) == ""

    def test_build_path_table(self):
        table = small_doc().build_path_table()
        assert ("dblp", "article", "title") in table
        assert ("dblp", "article", "author") in table


class TestStats:
    def test_node_count(self):
        doc = small_doc()
        # dblp + 2 articles + 2 titles + 1 author = 6
        assert doc.stats.node_count == 6

    def test_max_depth(self):
        assert small_doc().stats.max_depth == 3

    def test_avg_depth(self):
        # depths: 1 + 2 + 3 + 3 + 2 + 3 = 14 over 6 nodes
        assert abs(small_doc().stats.avg_depth - 14 / 6) < 1e-9

    def test_stats_cached(self):
        doc = small_doc()
        assert doc.stats is doc.stats

    def test_as_row_shape(self):
        row = small_doc().stats.as_row()
        assert set(row) == {"size (MB)", "#node", "max depth", "avg depth"}

    def test_token_nodes(self):
        assert small_doc().stats.token_nodes == 3

    def test_serialize_parses_back(self):
        doc = small_doc()
        again = XMLDocument.from_string(doc.serialize())
        assert again.stats.node_count == doc.stats.node_count
