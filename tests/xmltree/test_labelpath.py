"""Tests for label path formatting and the interning PathTable."""

import pytest

from repro.xmltree.labelpath import (
    PathTable,
    format_path,
    parse_path,
)


class TestFormatting:
    def test_format(self):
        assert format_path(("a", "b", "c")) == "/a/b/c"

    def test_parse(self):
        assert parse_path("/a/b/c") == ("a", "b", "c")

    def test_parse_without_leading_slash(self):
        assert parse_path("a/b") == ("a", "b")

    def test_parse_root_only(self):
        assert parse_path("/") == ()

    def test_roundtrip(self):
        path = ("dblp", "article", "title")
        assert parse_path(format_path(path)) == path


class TestPathTable:
    def test_intern_assigns_dense_ids(self):
        table = PathTable()
        assert table.intern(("a",)) == 0
        assert table.intern(("a", "b")) == 1
        assert table.intern(("a",)) == 0  # idempotent

    def test_id_of_known(self):
        table = PathTable()
        pid = table.intern(("x", "y"))
        assert table.id_of(("x", "y")) == pid

    def test_id_of_unknown_raises(self):
        table = PathTable()
        with pytest.raises(KeyError):
            table.id_of(("missing",))

    def test_get_id_unknown_returns_none(self):
        assert PathTable().get_id(("nope",)) is None

    def test_labels_and_string(self):
        table = PathTable()
        pid = table.intern(("a", "b"))
        assert table.labels_of(pid) == ("a", "b")
        assert table.string_of(pid) == "/a/b"

    def test_depth(self):
        table = PathTable()
        pid = table.intern(("a", "b", "c"))
        assert table.depth_of(pid) == 3

    def test_contains_and_len(self):
        table = PathTable()
        table.intern(("a",))
        assert ("a",) in table
        assert ("b",) not in table
        assert len(table) == 1

    def test_prefix_id_interns_on_demand(self):
        table = PathTable()
        deep = table.intern(("a", "b", "c"))
        prefix = table.prefix_id(deep, 2)
        assert table.labels_of(prefix) == ("a", "b")

    def test_prefix_id_full_depth_is_identity(self):
        table = PathTable()
        pid = table.intern(("a", "b"))
        assert table.prefix_id(pid, 2) == pid

    def test_prefix_id_cached(self):
        table = PathTable()
        deep = table.intern(("a", "b", "c", "d"))
        first = table.prefix_id(deep, 2)
        second = table.prefix_id(deep, 2)
        assert first == second

    def test_prefix_id_out_of_range(self):
        table = PathTable()
        pid = table.intern(("a", "b"))
        with pytest.raises(ValueError):
            table.prefix_id(pid, 3)
        with pytest.raises(ValueError):
            table.prefix_id(pid, 0)

    def test_ids_at_least_depth(self):
        table = PathTable()
        shallow = table.intern(("a",))
        deep = table.intern(("a", "b", "c"))
        mid = table.intern(("a", "b"))
        assert set(table.ids_at_least_depth(2)) == {deep, mid}
        assert set(table.ids_at_least_depth(1)) == {shallow, deep, mid}
