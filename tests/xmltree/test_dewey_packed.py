"""Tests for the packed-int Dewey encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DeweyError
from repro.xmltree.dewey_packed import DeweyPacker

codes = st.lists(
    st.integers(min_value=1, max_value=200), min_size=1, max_size=6
).map(tuple)


class TestRoundTrip:
    @given(st.lists(codes, min_size=1, max_size=30))
    def test_pack_unpack_identity(self, pool):
        packer = DeweyPacker.for_codes(pool)
        for code in pool:
            assert packer.unpack(packer.pack(code)) == code

    def test_for_codes_sizes_to_data(self):
        packer = DeweyPacker.for_codes([(1, 2, 3), (7,)])
        assert packer.max_depth == 3
        assert packer.component_bits == 3  # 7 needs three bits

    def test_overflow_rejected(self):
        packer = DeweyPacker(max_depth=2, component_bits=3)
        with pytest.raises(DeweyError):
            packer.pack((8, 1))  # component too large
        with pytest.raises(DeweyError):
            packer.pack((1, 1, 1))  # too deep
        with pytest.raises(DeweyError):
            packer.pack(())


class TestOrdering:
    @given(st.lists(codes, min_size=2, max_size=40))
    def test_numeric_order_is_document_order(self, pool):
        packer = DeweyPacker.for_codes(pool)
        by_tuple = sorted(set(pool))
        by_key = sorted(packer.pack(code) for code in set(pool))
        assert [packer.unpack(k) for k in by_key] == by_tuple

    def test_ancestor_sorts_first(self):
        packer = DeweyPacker(max_depth=3, component_bits=4)
        assert packer.pack((1,)) < packer.pack((1, 1))
        assert packer.pack((1, 1)) < packer.pack((1, 1, 1))
        assert packer.pack((1, 15, 15)) < packer.pack((2,))


class TestStructuralQueries:
    @given(codes)
    def test_depth_is_o1(self, code):
        packer = DeweyPacker.for_codes([code])
        assert packer.depth(packer.pack(code)) == len(code)

    @given(codes, st.data())
    def test_prefix_matches_tuple_slice(self, code, data):
        depth = data.draw(
            st.integers(min_value=1, max_value=len(code))
        )
        packer = DeweyPacker.for_codes([code])
        prefix_key = packer.prefix(packer.pack(code), depth)
        assert packer.unpack(prefix_key) == code[:depth]

    @given(codes, codes)
    def test_is_under_matches_tuple_semantics(self, code, group):
        packer = DeweyPacker.for_codes([code, group])
        key = packer.pack(code)
        group_key = packer.pack(group)
        expected = (
            len(code) >= len(group) and code[: len(group)] == group
        )
        assert packer.is_under(key, group_key) == expected

    def test_shift_for_group_test(self):
        packer = DeweyPacker(max_depth=4, component_bits=5)
        group = packer.pack((3, 2))
        shift = packer.shift_for(2)
        inside = [packer.pack(c) for c in [(3, 2), (3, 2, 1), (3, 2, 9, 4)]]
        outside = [packer.pack(c) for c in [(3,), (3, 3), (2, 2, 1), (4,)]]
        for key in inside:
            assert key >> shift == group >> shift
        for key in outside:
            assert key >> shift != group >> shift

    def test_fits_int64(self):
        assert DeweyPacker(max_depth=4, component_bits=14).fits_int64
        assert not DeweyPacker(max_depth=8, component_bits=16).fits_int64
