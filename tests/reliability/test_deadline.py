"""Deadline-aware execution: anytime answers, never a raise.

The contract (docs/serving.md → Reliability): with no deadline the
engines behave byte-identically to the pre-deadline code; a generous
deadline returns the exact top-k; an expired deadline returns the
best-so-far top-k with ``CleaningStats.partial=True`` — and partial
answers are served but never cached.
"""

import time

import pytest

from repro.core.cleaner import XCleanSuggester
from repro.core.config import XCleanConfig
from repro.core.deadline import Deadline
from repro.core.server import SuggestionService
from repro.index.corpus import build_corpus_index
from repro.obs.faults import injected
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


class TestDeadlineClock:
    def test_generous_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert not deadline.expired_now()
        assert deadline.remaining() > 59.0

    def test_zero_budget_expires_on_first_check(self):
        deadline = Deadline(0.0)
        assert deadline.expired()

    def test_negative_budget_clamped_to_zero(self):
        deadline = Deadline(-5.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_expiry_is_sticky(self):
        deadline = Deadline(0.01, stride=1)
        time.sleep(0.02)
        assert deadline.expired()
        # Later checks never un-expire, whatever the stride counter says.
        assert all(deadline.expired() for _ in range(10))

    def test_amortized_checks_eventually_observe_expiry(self):
        deadline = Deadline(0.01, stride=4)
        time.sleep(0.02)
        # At most ``stride`` calls between clock reads.
        assert any(deadline.expired() for _ in range(5))


@pytest.mark.parametrize("engine", ["packed", "tuple"])
class TestEquivalence:
    QUERIES = ["tree icdt", "databas", "tree icde"]

    @staticmethod
    def _answers(corpus, engine, deadline_seconds):
        suggester = XCleanSuggester(
            corpus,
            config=XCleanConfig(
                max_errors=1,
                engine=engine,
                deadline_seconds=deadline_seconds,
            ),
        )
        out = []
        for query in TestEquivalence.QUERIES:
            suggestions = suggester.suggest(query, 5)
            assert suggester.last_stats.partial is False
            out.append(
                [(s.tokens, s.score, s.result_type) for s in suggestions]
            )
        return out

    def test_generous_deadline_matches_no_deadline(self, corpus, engine):
        exact = self._answers(corpus, engine, None)
        budgeted = self._answers(corpus, engine, 60.0)
        assert budgeted == exact


@pytest.mark.parametrize("engine", ["packed", "tuple"])
class TestPartialResults:
    def test_expired_deadline_returns_partial_not_raises(
        self, corpus, engine
    ):
        suggester = XCleanSuggester(
            corpus,
            config=XCleanConfig(
                max_errors=1, engine=engine, deadline_seconds=0.01
            ),
        )
        # Burn the whole budget before the merge loop starts: the first
        # deadline check (the Deadline reads the clock on its first
        # call) then sees expiry, so the answer must come back partial.
        with injected("variant.gen:delay=0.05"):
            suggestions = suggester.suggest("tree icdt", 5)
        assert suggester.last_stats.partial is True
        assert isinstance(suggestions, list)

    def test_partial_never_cached_serial(self, corpus, engine):
        config = XCleanConfig(
            max_errors=1, engine=engine, deadline_seconds=0.01
        )
        service = SuggestionService(corpus, config=config)
        with injected("variant.gen:delay=0.05"):
            service.suggest("tree icdt", 5)
            service.suggest("tree icdt", 5)
        assert service.stats.partial_results == 2
        assert service.stats.result_cache_hits == 0
        assert service.stats.result_cache_misses == 2
        assert len(service._result_cache) == 0
        # With the fault lifted and the deadline relaxed, the exact
        # answer is computed, cached, and identical to an undeadlined
        # reference.
        relaxed = SuggestionService(
            corpus,
            config=XCleanConfig(max_errors=1, engine=engine),
        )
        exact = relaxed.suggest("tree icdt", 5)
        assert [s.tokens for s in exact]
        assert relaxed.stats.partial_results == 0


def test_partial_never_cached_parallel(corpus):
    # The fault plan and deadline travel to pool workers through the
    # picklable config; each occurrence of the partial answer is served
    # as an uncached miss.
    config = XCleanConfig(
        max_errors=1,
        deadline_seconds=0.01,
        fault_plan="variant.gen:delay=0.05",
    )
    with SuggestionService(corpus, config=config) as service:
        batch = service.suggest_batch(
            ["tree icdt", "tree icdt"], 5, workers=2
        )
    assert len(batch) == 2
    assert service.stats.partial_results == 2
    assert service.stats.result_cache_hits == 0
    assert len(service._result_cache) == 0
    assert service.last_stats.partial is True
