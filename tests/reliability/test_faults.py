"""Unit tests for the fault-injection harness (repro/obs/faults.py)."""

import time

import pytest

from repro.core.config import XCleanConfig
from repro.exceptions import ConfigurationError, FaultInjected
from repro.obs import faults
from repro.obs.faults import NULL_FAULTS, FaultAction, FaultPlan, injected


class TestSpecParsing:
    def test_round_trip(self):
        spec = "worker.query:delay=0.5@3x2;snapshot.load:raise"
        plan = FaultPlan.parse(spec, seed=7)
        assert plan.spec() == spec
        assert FaultPlan.parse(plan.spec(), seed=7).spec() == spec

    def test_comma_and_semicolon_separators(self):
        plan = FaultPlan.parse("merge.step:raise, variant.gen:raise")
        assert len(plan.actions) == 2

    def test_delay_requires_seconds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("worker.query:delay")

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("bogus.site:raise")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("worker.query:explode")

    def test_corrupt_needs_path_bearing_site(self):
        with pytest.raises(ConfigurationError):
            FaultAction(site="merge.step", kind="corrupt")
        # snapshot.load hands over a path, so corrupt is legal there.
        FaultAction(site="snapshot.load", kind="corrupt")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("  ;  ")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("worker.query raise")

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultAction(site="merge.step", kind="delay", seconds=-1.0)


class TestScheduling:
    def test_raise_fires_every_hit(self):
        plan = FaultPlan.parse("merge.step:raise")
        for _ in range(3):
            with pytest.raises(FaultInjected) as excinfo:
                plan.hit("merge.step")
            assert excinfo.value.site == "merge.step"
        assert plan.fired() == {"merge.step": 3}

    def test_after_skips_first_hits(self):
        plan = FaultPlan.parse("merge.step:raise@2")
        plan.hit("merge.step")
        plan.hit("merge.step")
        with pytest.raises(FaultInjected):
            plan.hit("merge.step")

    def test_times_caps_firings(self):
        plan = FaultPlan.parse("merge.step:raise x2")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.hit("merge.step")
        plan.hit("merge.step")  # exhausted: no-op now
        assert plan.fired() == {"merge.step": 2}

    def test_raise_still_advances_schedule(self):
        # The hit is recorded before the raise, so a one-shot action
        # stays one-shot even though it raised.
        plan = FaultPlan.parse("variant.gen:raise@1x1")
        plan.hit("variant.gen")
        with pytest.raises(FaultInjected):
            plan.hit("variant.gen")
        plan.hit("variant.gen")
        assert plan.fired() == {"variant.gen": 1}

    def test_delay_sleeps(self):
        plan = FaultPlan.parse("worker.query:delay=0.05x1")
        began = time.perf_counter()
        plan.hit("worker.query")
        assert time.perf_counter() - began >= 0.04
        began = time.perf_counter()
        plan.hit("worker.query")  # capped: no further sleep
        assert time.perf_counter() - began < 0.04

    def test_unlisted_site_is_noop(self):
        plan = FaultPlan.parse("merge.step:raise")
        plan.hit("worker.query")
        assert plan.fired() == {}

    def test_describe_reports_actions_and_fired(self):
        plan = FaultPlan.parse("merge.step:raise x1", seed=3)
        with pytest.raises(FaultInjected):
            plan.hit("merge.step")
        description = plan.describe()
        assert description["enabled"] is True
        assert description["seed"] == 3
        assert description["actions"] == ["merge.step:raise x1".replace(" ", "")]
        assert description["fired"] == {"merge.step": 1}


class TestCorrupt:
    def test_flips_exactly_one_byte_deterministically(self, tmp_path):
        payload = bytes(range(256)) * 8
        target = tmp_path / "data.bin"

        def corrupt_once(seed):
            target.write_bytes(payload)
            plan = FaultPlan.parse("snapshot.load:corrupt", seed=seed)
            plan.hit("snapshot.load", path=str(target))
            return target.read_bytes()

        first = corrupt_once(seed=11)
        diffs = [i for i, (a, b) in enumerate(zip(payload, first)) if a != b]
        assert len(diffs) == 1
        # Same seed, fresh plan: identical corruption.
        assert corrupt_once(seed=11) == first

    def test_corrupt_without_path_is_noop(self, tmp_path):
        plan = FaultPlan.parse("snapshot.load:corrupt")
        plan.hit("snapshot.load")  # no path: nothing to flip

    def test_corrupt_empty_file_is_noop(self, tmp_path):
        target = tmp_path / "empty.bin"
        target.write_bytes(b"")
        plan = FaultPlan.parse("snapshot.load:corrupt")
        plan.hit("snapshot.load", path=str(target))
        assert target.read_bytes() == b""


class TestInstallation:
    def test_default_is_null_plan(self):
        assert faults.active() is NULL_FAULTS
        assert NULL_FAULTS.enabled is False
        NULL_FAULTS.hit("merge.step")  # no-op
        assert NULL_FAULTS.fired() == {}
        assert NULL_FAULTS.describe()["enabled"] is False

    def test_injected_scopes_and_restores(self):
        with injected("merge.step:raise") as plan:
            assert faults.active() is plan
            with pytest.raises(FaultInjected):
                faults.active().hit("merge.step")
        assert faults.active() is NULL_FAULTS

    def test_injected_nests(self):
        with injected("merge.step:raise") as outer:
            with injected("variant.gen:raise") as inner:
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is NULL_FAULTS

    def test_install_spec_and_uninstall(self):
        plan = faults.install_spec("worker.init:raise", seed=5)
        try:
            assert faults.active() is plan
            assert plan.seed == 5
        finally:
            faults.uninstall()
        assert faults.active() is NULL_FAULTS


class TestConfigValidation:
    def test_fault_plan_validated_eagerly(self):
        with pytest.raises(ConfigurationError):
            XCleanConfig(fault_plan="not a plan")
        XCleanConfig(fault_plan="merge.step:delay=0.1")

    def test_deadline_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            XCleanConfig(deadline_seconds=0)
        with pytest.raises(ConfigurationError):
            XCleanConfig(deadline_seconds=-1.5)
        XCleanConfig(deadline_seconds=0.5)
        XCleanConfig(deadline_seconds=None)
