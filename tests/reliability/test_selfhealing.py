"""Self-healing serving: admission control, circuit breaker, close().

Every drill here must end in one of exactly three outcomes — a correct
answer, a ``partial=True`` answer, or a typed error — and never a hang,
a leaked process, or a wrong top-k.
"""

import time

import pytest

from repro.core import server as server_module
from repro.core.config import XCleanConfig
from repro.core.server import CircuitBreaker, SuggestionService
from repro.exceptions import ConfigurationError, Overloaded
from repro.index.corpus import build_corpus_index
from repro.obs import MetricsRegistry
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(XMLDocument(paper_example_tree()))


def make_service(corpus, **kwargs):
    return SuggestionService(
        corpus, config=XCleanConfig(max_errors=1), **kwargs
    )


def _rows(batches):
    return [
        [(s.tokens, s.result_type) for s in suggestions]
        for suggestions in batches
    ]


# Module-level so they pickle by reference; the pool forks after the
# monkeypatch, so workers inherit the stand-in.
def _crashy_worker(task):
    raise RuntimeError("worker crash (injected)")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.now = 4.0
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.allow()  # this dispatch IS the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_retry_after_none_when_not_open(self):
        breaker = CircuitBreaker()
        assert breaker.retry_after() is None

    def test_transitions_visible_in_metrics(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1, cooldown=0.0, metrics=registry, clock=clock
        )
        breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        counters = registry.snapshot().as_dict()["counters"]
        assert counters['breaker_transitions_total{to="open"}'] == 1
        assert counters['breaker_transitions_total{to="half_open"}'] == 1
        assert counters['breaker_transitions_total{to="closed"}'] == 1

    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=-1.0)


class TestAdmissionControl:
    def test_oversized_batch_shed_whole(self, corpus):
        service = make_service(corpus, max_pending=2)
        with pytest.raises(Overloaded):
            service.suggest_batch(["tree icdt", "databas", "icde"], 5)
        assert service.stats.shed_queries == 3
        assert service.stats.queries_served == 0

    def test_shed_releases_nothing(self, corpus):
        # A shed batch must not leak reserved slots: a batch that fits
        # afterwards is admitted and answered.
        service = make_service(corpus, max_pending=2)
        with pytest.raises(Overloaded):
            service.suggest_batch(["a b", "c d", "e f"], 5)
        batch = service.suggest_batch(["tree icdt", "databas"], 5)
        assert len(batch) == 2
        assert service._inflight == 0

    def test_shed_counter_exported(self, corpus):
        service = make_service(corpus, max_pending=1)
        with pytest.raises(Overloaded):
            service.suggest_batch(["tree icdt", "databas"], 5)
        counters = service.metrics().as_dict()["counters"]
        assert counters["shed_queries_total"] == 2

    def test_unbounded_by_default(self, corpus):
        service = make_service(corpus)
        batch = service.suggest_batch(["tree icdt"] * 50, 5)
        assert len(batch) == 50
        assert service.stats.shed_queries == 0

    def test_max_pending_validated(self, corpus):
        with pytest.raises(ConfigurationError):
            make_service(corpus, max_pending=0)


class TestBreakerInService:
    def test_crashing_pool_opens_breaker_then_recovers(
        self, corpus, monkeypatch
    ):
        reference = make_service(corpus).suggest_batch(
            ["tree icdt", "databas", "tree icde"], 5
        )
        monkeypatch.setattr(
            server_module, "_worker_suggest", _crashy_worker
        )
        with make_service(
            corpus, breaker_threshold=1, breaker_cooldown=60.0
        ) as service:
            # Batch 1: the worker crashes, the answer degrades to the
            # parent (still correct), and the breaker opens.
            first = service.suggest_batch(["tree icdt"], 5, workers=2)
            assert _rows(first) == _rows(reference[:1])
            assert service.breaker.state == "open"
            assert service.stats.worker_failures >= 1
            assert service.stats.degraded_queries >= 1

            # Batch 2 (fresh query, open breaker): shed with a typed
            # error before any work, retry_after tells callers when.
            with pytest.raises(Overloaded) as excinfo:
                service.suggest_batch(["databas"], 5, workers=2)
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after <= 60.0
            assert service.stats.shed_queries == 1

            # Cached answers still flow while the breaker is open.
            cached = service.suggest_batch(["tree icdt"], 5, workers=2)
            assert _rows(cached) == _rows(reference[:1])

            # Cooldown over + healthy workers again: the next batch is
            # the half-open probe; success closes the breaker.
            monkeypatch.undo()
            service.breaker.cooldown = 0.0
            third = service.suggest_batch(["tree icde"], 5, workers=2)
            assert _rows(third) == _rows(reference[2:])
            assert service.breaker.state == "closed"

    def test_open_breaker_sheds_whole_batch(self, corpus, monkeypatch):
        monkeypatch.setattr(
            server_module, "_worker_suggest", _crashy_worker
        )
        with make_service(
            corpus, breaker_threshold=1, breaker_cooldown=60.0
        ) as service:
            service.suggest_batch(["tree icdt"], 5, workers=2)
            with pytest.raises(Overloaded):
                service.suggest_batch(
                    ["databas", "tree icde"], 5, workers=2
                )
            # The whole batch was shed: nothing served, both counted.
            assert service.stats.shed_queries == 2
            assert service.stats.queries_served == 1


class TestWorkerFaultPlans:
    """Fault plans travel to pool workers through the config."""

    def test_worker_query_raise_degrades_to_correct_answer(self, corpus):
        reference = make_service(corpus).suggest_batch(["tree icdt"], 5)
        config = XCleanConfig(
            max_errors=1, fault_plan="worker.query:raise"
        )
        with SuggestionService(corpus, config=config) as service:
            batch = service.suggest_batch(["tree icdt"], 5, workers=2)
        assert _rows(batch) == _rows(reference)
        assert service.stats.worker_failures >= 1
        assert service.stats.degraded_queries == 1

    def test_worker_init_raise_degrades_to_correct_answer(self, corpus):
        reference = make_service(corpus).suggest_batch(["tree icdt"], 5)
        config = XCleanConfig(
            max_errors=1, fault_plan="worker.init:raise"
        )
        with SuggestionService(corpus, config=config) as service:
            batch = service.suggest_batch(["tree icdt"], 5, workers=2)
        assert _rows(batch) == _rows(reference)
        assert service.stats.degraded_queries == 1

    def test_worker_delay_past_timeout_retries_then_degrades(
        self, corpus
    ):
        reference = make_service(corpus).suggest_batch(["tree icdt"], 5)
        config = XCleanConfig(
            max_errors=1, fault_plan="worker.query:delay=0.5"
        )
        with SuggestionService(
            corpus,
            config=config,
            worker_timeout=0.1,
            close_grace=0.2,
        ) as service:
            batch = service.suggest_batch(["tree icdt"], 5, workers=2)
            assert _rows(batch) == _rows(reference)
            assert service.stats.worker_timeouts == 2
            assert service.stats.degraded_queries == 1
            assert service.stats.pool_recycles == 1


class TestCloseUnderFailure:
    def test_close_with_hung_worker_neither_deadlocks_nor_leaks(
        self, corpus
    ):
        # A worker sleeping far past close() must be terminated within
        # the grace budget, not joined forever and not left running.
        config = XCleanConfig(
            max_errors=1, fault_plan="worker.query:delay=30"
        )
        service = SuggestionService(
            corpus,
            config=config,
            worker_timeout=0.1,
            close_grace=0.2,
        )
        batch = service.suggest_batch(["tree icdt"], 5, workers=2)
        assert batch[0]  # degraded in-process, still answered
        # The suspect pool was torn down without waiting; its hung
        # workers are tracked for reaping.
        hung = list(service._orphans)
        assert any(p.is_alive() for p in hung)
        began = time.perf_counter()
        service.close()
        elapsed = time.perf_counter() - began
        assert elapsed < 5.0  # bounded, not a 30s join
        for process in hung:
            process.join(1.0)
            assert not process.is_alive()
        assert service._orphans == []

    def test_close_idempotent_after_forced_teardown(self, corpus):
        config = XCleanConfig(
            max_errors=1, fault_plan="worker.query:delay=30"
        )
        service = SuggestionService(
            corpus,
            config=config,
            worker_timeout=0.1,
            close_grace=0.2,
        )
        service.suggest_batch(["tree icdt"], 5, workers=2)
        service.close()
        service.close()  # second close: nothing left, returns at once
        batch = service.suggest_batch(["databas"], 5, workers=2)
        assert len(batch) == 1  # degraded serving still works

    def test_close_with_open_breaker(self, corpus, monkeypatch):
        monkeypatch.setattr(
            server_module, "_worker_suggest", _crashy_worker
        )
        service = make_service(
            corpus, breaker_threshold=1, breaker_cooldown=60.0
        )
        service.suggest_batch(["tree icdt"], 5, workers=2)
        assert service.breaker.state == "open"
        began = time.perf_counter()
        service.close()
        assert time.perf_counter() - began < 5.0
        assert service._pool is None
