"""Snapshot quarantine: corrupt files are moved aside, never retried.

Two entry points are drilled: ``load_resilient`` (load-time CRC
failure → quarantine → fallback/rebuild) and the serving path (pool
trouble → deep verify → quarantine → pinned in-process execution on
the parent's still-valid mapping).
"""

import os

import pytest

from repro.core import server as server_module
from repro.core.config import XCleanConfig
from repro.core.server import SuggestionService
from repro.exceptions import StorageError
from repro.index.corpus import build_corpus_index
from repro.index.snapshot import (
    QUARANTINE_SUFFIX,
    build_snapshot,
    load_resilient,
    load_snapshot,
    quarantine_snapshot,
    verify_snapshot,
)
from repro.index.storage_binary import save_index_binary
from repro.obs import MetricsRegistry
from repro.xmltree.builder import paper_example_tree
from repro.xmltree.document import XMLDocument


@pytest.fixture(scope="module")
def corpus():
    return build_corpus_index(
        XMLDocument(paper_example_tree(), name="paper-example")
    )


def _corrupt_table(path):
    """Flip a byte in the section table so the table CRC fails."""
    with open(path, "r+b") as handle:
        handle.seek(20)
        byte = handle.read(1)
        handle.seek(20)
        handle.write(bytes([byte[0] ^ 0xFF]))


def _crashy_worker(task):
    raise RuntimeError("worker crash (injected)")


class TestQuarantineFile:
    def test_moves_file_aside_and_counts(self, corpus, tmp_path):
        path = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, path)
        registry = MetricsRegistry()
        target = quarantine_snapshot(path, metrics=registry)
        assert target == path + QUARANTINE_SUFFIX
        assert not os.path.exists(path)
        assert os.path.exists(target)
        counters = registry.snapshot().as_dict()["counters"]
        assert counters["snapshot_quarantined_total"] == 1

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine_snapshot(str(tmp_path / "gone.xcs3")) is None


class TestLoadResilient:
    def test_clean_snapshot_loads(self, corpus, tmp_path):
        path = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, path)
        loaded = load_resilient(path, verify=True)
        assert loaded.snapshot_path == path

    def test_corrupt_snapshot_quarantined_then_fallback(
        self, corpus, tmp_path
    ):
        bad = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, bad)
        _corrupt_table(bad)
        fallback = str(tmp_path / "index.xcib")
        save_index_binary(corpus, fallback)
        loaded = load_resilient(bad, fallback_path=fallback)
        assert loaded.name == corpus.name
        assert not os.path.exists(bad)
        assert os.path.exists(bad + QUARANTINE_SUFFIX)

    def test_corrupt_snapshot_falls_back_to_rebuild(
        self, corpus, tmp_path
    ):
        bad = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, bad)
        _corrupt_table(bad)
        loaded = load_resilient(bad, rebuild=lambda: corpus)
        assert loaded is corpus
        assert os.path.exists(bad + QUARANTINE_SUFFIX)

    def test_no_fallback_reraises_typed(self, corpus, tmp_path):
        bad = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, bad)
        _corrupt_table(bad)
        with pytest.raises(StorageError):
            load_resilient(bad)
        assert os.path.exists(bad + QUARANTINE_SUFFIX)

    def test_non_snapshot_corruption_not_quarantined(
        self, corpus, tmp_path
    ):
        path = str(tmp_path / "index.xcib")
        save_index_binary(corpus, path)
        with open(path, "r+b") as handle:
            handle.seek(10)
            byte = handle.read(1)
            handle.seek(10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(StorageError):
            load_resilient(path)
        # The v1/v2 tiers are the fallback artifact, not the managed
        # one: the file stays put for manual inspection.
        assert os.path.exists(path)
        assert not os.path.exists(path + QUARANTINE_SUFFIX)


class TestServeTimeQuarantine:
    def test_pool_trouble_over_corrupt_snapshot_degrades_in_process(
        self, corpus, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, path)
        snapshot_corpus = load_snapshot(path)
        reference = SuggestionService(
            corpus, config=XCleanConfig(max_errors=1)
        ).suggest_batch(["tree icdt", "databas"], 5)

        # The file goes bad *after* the parent mapped it (rotation
        # glitch, disk fault); the parent's mapping still holds the
        # good bytes, but any new worker would re-map garbage.
        _corrupt_table(path)
        monkeypatch.setattr(
            server_module, "_worker_suggest", _crashy_worker
        )
        with SuggestionService(
            snapshot_corpus,
            config=XCleanConfig(max_errors=1),
            breaker_threshold=10,
        ) as service:
            first = service.suggest_batch(["tree icdt"], 5, workers=2)
            # Pool trouble triggered the health check: the corrupt
            # file is quarantined and the service pins in-process.
            assert service.stats.snapshot_quarantined == 1
            assert service._snapshot_degraded
            assert not os.path.exists(path)
            assert os.path.exists(path + QUARANTINE_SUFFIX)
            # Answers stay correct throughout — the degraded batch and
            # everything after come from the parent's valid mapping.
            monkeypatch.undo()
            second = service.suggest_batch(["databas"], 5, workers=2)
            assert [
                [(s.tokens, s.result_type) for s in answer]
                for answer in first + second
            ] == [
                [(s.tokens, s.result_type) for s in answer]
                for answer in reference
            ]
            # No new pool is forked onto the quarantined file.
            assert service._pool is None
            assert service.stats.degraded_queries >= 2
        counters = service.metrics().as_dict()["counters"]
        assert counters["snapshot_quarantined_total"] == 1

    def test_healthy_snapshot_not_quarantined_on_pool_trouble(
        self, corpus, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, path)
        snapshot_corpus = load_snapshot(path)
        monkeypatch.setattr(
            server_module, "_worker_suggest", _crashy_worker
        )
        with SuggestionService(
            snapshot_corpus,
            config=XCleanConfig(max_errors=1),
            breaker_threshold=10,
        ) as service:
            service.suggest_batch(["tree icdt"], 5, workers=2)
            assert service.stats.snapshot_quarantined == 0
            assert not service._snapshot_degraded
        assert os.path.exists(path)
        verify_snapshot(path)

    def test_injected_load_fault_quarantines_via_fault_plan(
        self, corpus, tmp_path
    ):
        # Same ladder driven purely by a fault plan: ``snapshot.load``
        # raises inside the verify pass, standing in for a CRC failure
        # without touching the bytes the parent has mapped.
        path = str(tmp_path / "index.xcs3")
        build_snapshot(corpus, path)
        snapshot_corpus = load_snapshot(path)
        config = XCleanConfig(
            max_errors=1,
            fault_plan="worker.query:raise;snapshot.load:raise",
        )
        with SuggestionService(
            snapshot_corpus, config=config, breaker_threshold=10
        ) as service:
            batch = service.suggest_batch(["tree icdt"], 5, workers=2)
            assert batch[0]
            assert service.stats.snapshot_quarantined == 1
            assert service._snapshot_degraded
        assert os.path.exists(path + QUARANTINE_SUFFIX)
